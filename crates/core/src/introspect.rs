//! Predictor introspection probes: end-of-run table-health reports.
//!
//! [`Predictor::table_probes`](crate::Predictor::table_probes) lets a
//! predictor expose the state of its prediction tables — capacity,
//! occupancy, counter saturation, usefulness — as structured
//! [`TableProbe`] reports. Probes are computed once at the end of a run
//! from the final table state (plus cheap train-path counters such as
//! allocation failures), so collecting them adds nothing to the
//! per-record hot path; when [`crate::SimConfig::collect_probes`] is off
//! they are not collected at all.

use mbp_json::{Map, Value};
use mbp_utils::SatCounter;

/// A table-health report for one prediction table (or bank).
///
/// The histogram partitions all entries into labelled buckets (counter
/// states for saturating-counter tables, weight-magnitude buckets for
/// perceptron weights), so its counts always sum to `entries`.
#[derive(Clone, Debug, PartialEq)]
pub struct TableProbe {
    /// Table name, unique within one predictor (e.g. `"tage.bank3"`).
    /// Composite predictors prefix the names of their components.
    pub name: String,
    /// Total entries (capacity).
    pub entries: u64,
    /// Entries that have left their reset state ("live" entries).
    pub occupied: u64,
    /// Entries whose counter sits at a saturation rail.
    pub saturated: u64,
    /// Labelled entry-count buckets; counts sum to `entries`.
    pub counter_histogram: Vec<(String, u64)>,
    /// Mean normalized usefulness in `[0, 1]` for tables that track it
    /// (TAGE useful bits, BATAGE dual-counter confidence).
    pub useful_density: Option<f64>,
    /// Predictor-specific scalars (allocation failure counts, history
    /// lengths, aliasing proxies, ...), merged into the JSON report.
    pub extra: Vec<(String, Value)>,
}

impl TableProbe {
    /// Creates an empty probe for a table of `entries` slots.
    pub fn new(name: impl Into<String>, entries: u64) -> Self {
        Self {
            name: name.into(),
            entries,
            occupied: 0,
            saturated: 0,
            counter_histogram: Vec::new(),
            useful_density: None,
            extra: Vec::new(),
        }
    }

    /// Fraction of entries that are live (0.0 for an empty table).
    pub fn occupancy(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.occupied as f64 / self.entries as f64
        }
    }

    /// Adds a predictor-specific scalar to the report.
    pub fn with_extra(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.extra.push((key.into(), value.into()));
        self
    }

    /// Prefixes the probe name with `component.` (composite predictors).
    pub fn prefixed(mut self, component: &str) -> Self {
        self.name = format!("{component}.{}", self.name);
        self
    }

    /// Renders one probe report object.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("name", self.name.as_str());
        m.insert("entries", self.entries);
        m.insert("occupied", self.occupied);
        m.insert("occupancy", self.occupancy());
        m.insert("saturated", self.saturated);
        let mut hist = Map::new();
        for (label, count) in &self.counter_histogram {
            hist.insert(label.as_str(), *count);
        }
        m.insert("counter_histogram", Value::Object(hist));
        if let Some(d) = self.useful_density {
            m.insert("useful_density", d);
        }
        for (key, value) in &self.extra {
            m.insert(key.as_str(), value.clone());
        }
        Value::Object(m)
    }
}

/// Renders a probe list as the JSON array used by the `introspection`
/// output section.
pub fn probes_to_json(probes: &[TableProbe]) -> Value {
    probes.iter().map(TableProbe::to_json).collect()
}

/// Probes a table of signed saturating counters: one histogram bucket per
/// counter state, occupancy as the fraction of counters that moved off the
/// reset value, and the weak-state count as a destructive-aliasing proxy
/// (`weak_entries`: counters held near zero by conflicting branches).
pub fn probe_counter_table<const BITS: u32>(
    name: impl Into<String>,
    table: &[SatCounter<BITS>],
) -> TableProbe {
    let mut probe = TableProbe::new(name, table.len() as u64);
    let states = 1usize << BITS;
    let mut histogram = vec![0u64; states];
    let reset = SatCounter::<BITS>::default().value();
    let mut weak = 0u64;
    for c in table {
        histogram[(c.value() - SatCounter::<BITS>::MIN) as usize] += 1;
        probe.occupied += (c.value() != reset) as u64;
        probe.saturated += c.is_saturated() as u64;
        weak += c.is_weak() as u64;
    }
    probe.counter_histogram = histogram
        .into_iter()
        .enumerate()
        .map(|(i, n)| (format!("{}", SatCounter::<BITS>::MIN + i as i8), n))
        .collect();
    probe.with_extra("weak_entries", weak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_utils::I2;

    #[test]
    fn counter_table_probe_partitions_all_entries() {
        let mut table = vec![I2::default(); 8];
        table[0].sum_or_sub(true); // 0 -> 1 (saturated)
        table[1].sum_or_sub(false); // 0 -> -1
        table[2].sum_or_sub(false);
        table[2].sum_or_sub(false); // 0 -> -2 (saturated)
        let probe = probe_counter_table("bimodal", &table);
        assert_eq!(probe.entries, 8);
        assert_eq!(probe.occupied, 3);
        assert_eq!(probe.saturated, 2);
        let total: u64 = probe.counter_histogram.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 8, "histogram partitions the table");
        let labels: Vec<&str> = probe
            .counter_histogram
            .iter()
            .map(|(l, _)| l.as_str())
            .collect();
        assert_eq!(labels, ["-2", "-1", "0", "1"]);
        assert_eq!(probe.occupancy(), 3.0 / 8.0);
    }

    #[test]
    fn probe_json_includes_extras_and_density() {
        let mut probe = TableProbe::new("tage.bank0", 4).with_extra("hist_len", 4u64);
        probe.occupied = 2;
        probe.useful_density = Some(0.25);
        let v = probe.to_json();
        assert_eq!(v["name"].as_str(), Some("tage.bank0"));
        assert_eq!(v["occupancy"].as_f64(), Some(0.5));
        assert_eq!(v["useful_density"].as_f64(), Some(0.25));
        assert_eq!(v["hist_len"].as_u64(), Some(4));
    }

    #[test]
    fn prefixed_renames_for_composites() {
        let probe = TableProbe::new("gshare", 4).prefixed("bp1");
        assert_eq!(probe.name, "bp1.gshare");
    }

    #[test]
    fn probes_to_json_is_an_array() {
        let v = probes_to_json(&[TableProbe::new("a", 1), TableProbe::new("b", 2)]);
        assert_eq!(v.as_array().map(<[Value]>::len), Some(2));
        assert_eq!(v[1]["entries"].as_u64(), Some(2));
    }
}
