//! The branch predictor interface (§IV-A of the paper).

use mbp_json::Value;
use mbp_trace::Branch;

use crate::introspect::TableProbe;

/// A branch direction predictor.
///
/// The contract follows MBPlib's `mbp::Predictor` exactly:
///
/// * [`predict`](Predictor::predict) — "obtains the outcome prediction for a
///   given instruction address. This function shall not modify the state of
///   the predictor in any way that would affect future predictions." It
///   takes `&mut self` only so implementations may cache lookups for the
///   matching `train` call (the paper's tournament predictor does exactly
///   this); semantically it must be idempotent.
/// * [`train`](Predictor::train) — updates the structures that decide
///   predictions, given the resolved branch.
/// * [`track`](Predictor::track) — updates the *scenario*: "the information
///   stored about the recent program behavior, such as the outcome of
///   recent branches".
///
/// When driven by the simulator, `predict` and `train` are invoked for
/// conditional branches and `track` for **all** branches. When a predictor
/// is a subcomponent of a meta-predictor or sits behind a filter, the owning
/// component decides which functions to call and with which
/// [`Branch`] values — that freedom is the point of the split (§IV-B).
///
/// # Examples
///
/// See the crate-level example, or `mbp-predictors` for the full collection.
pub trait Predictor {
    /// Predicts the outcome of the branch at `ip`.
    ///
    /// Must not change any state that affects future predictions; caching
    /// for a same-`ip` `train` call is allowed.
    fn predict(&mut self, ip: u64) -> bool;

    /// Updates the prediction structures with the resolved branch.
    fn train(&mut self, branch: &Branch);

    /// Updates the scenario (history registers, path registers, …) with the
    /// resolved branch.
    fn track(&mut self, branch: &Branch);

    /// Static description of the predictor (name and parameters), embedded
    /// under `metadata.predictor` in the simulator output (Listing 1).
    fn metadata(&self) -> Value {
        Value::from("unnamed predictor")
    }

    /// Dynamic execution statistics, embedded under `predictor_statistics`
    /// in the simulator output (and per-predictor in the comparison and
    /// sweep documents).
    ///
    /// # Contract
    ///
    /// * Returns a JSON **object** (possibly empty — the default). Scalars
    ///   or arrays would not merge predictably into the output document.
    /// * Must be cheap and read-only: it is called once per run, after the
    ///   trace is exhausted, and must not mutate predictor state.
    /// * Values must be deterministic for a given record stream and
    ///   configuration — the driver-equivalence suite compares full output
    ///   documents across the scalar, batched and sweep drivers.
    /// * Counters that back these statistics should live on the `train` /
    ///   `track` paths, never on `predict` (which the simulator may call
    ///   speculatively), and should be plain integer increments so the
    ///   statistics stay free for the hot path.
    fn execution_statistics(&self) -> Value {
        Value::object()
    }

    /// End-of-run table-health probes (see [`TableProbe`]), surfaced in the
    /// output's `introspection` section when the run collects probes
    /// ([`crate::SimConfig::collect_probes`]).
    ///
    /// Like [`execution_statistics`](Predictor::execution_statistics), this
    /// is called once per run and must be read-only and deterministic.
    /// Predictors without probe support return the default empty list.
    fn table_probes(&self) -> Vec<TableProbe> {
        Vec::new()
    }
}

/// Boxed predictors forward the interface, so `Box<dyn Predictor>` members
/// compose (the generalized tournament of §VI-D holds its components this
/// way).
impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&mut self, ip: u64) -> bool {
        (**self).predict(ip)
    }

    fn train(&mut self, branch: &Branch) {
        (**self).train(branch)
    }

    fn track(&mut self, branch: &Branch) {
        (**self).track(branch)
    }

    fn metadata(&self) -> Value {
        (**self).metadata()
    }

    fn execution_statistics(&self) -> Value {
        (**self).execution_statistics()
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        (**self).table_probes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;
    use mbp_trace::Opcode;

    struct Fixed(bool, u32);

    impl Predictor for Fixed {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {
            self.1 += 1;
        }
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "fixed", "direction": self.0})
        }
    }

    #[test]
    fn boxed_predictor_forwards() {
        let mut p: Box<dyn Predictor> = Box::new(Fixed(true, 0));
        assert!(p.predict(0));
        let b = Branch::new(0, 0, Opcode::conditional_direct(), true);
        p.train(&b);
        p.track(&b);
        assert_eq!(p.metadata()["name"], Value::from("fixed"));
        assert_eq!(p.execution_statistics(), Value::object());
        assert!(p.table_probes().is_empty(), "default probes are empty");
    }
}
