//! The branch predictor interface (§IV-A of the paper).

use mbp_json::Value;
use mbp_trace::{Branch, BranchBatch};

use crate::introspect::TableProbe;

/// A growable bitset collecting one prediction per conditional branch, in
/// batch order — the output buffer of [`Predictor::predict_batch`].
///
/// Bit-packed so a 2048-record batch's predictions stay in four cache
/// lines, and cleared by truncation so the buffer is reused across batches
/// without reallocation.
///
/// # Examples
///
/// ```
/// use mbp_core::PredictionBits;
///
/// let mut bits = PredictionBits::new();
/// bits.push(true);
/// bits.push(false);
/// assert_eq!(bits.len(), 2);
/// assert!(bits.get(0));
/// assert!(!bits.get(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PredictionBits {
    words: Vec<u64>,
    len: usize,
}

impl PredictionBits {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of predictions pushed since the last clear.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no predictions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the bitset, keeping its allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Appends one prediction.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if let Some(word) = self.words.last_mut() {
            *word |= (taken as u64) << bit;
        }
        self.len += 1;
    }

    /// Appends the low `count` bits of `bits`, LSB first — the bulk
    /// counterpart of [`push`](PredictionBits::push) for kernels that
    /// accumulate predictions in a register and flush once per word.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    #[inline]
    pub fn push_word(&mut self, bits: u64, count: usize) {
        assert!(count <= 64, "cannot push {count} bits from one word");
        if count == 0 {
            return;
        }
        let bits = if count == 64 {
            bits
        } else {
            bits & ((1u64 << count) - 1)
        };
        let off = self.len % 64;
        if off == 0 {
            self.words.push(bits);
        } else {
            if let Some(word) = self.words.last_mut() {
                *word |= bits << off;
            }
            if count > 64 - off {
                self.words.push(bits >> (64 - off));
            }
        }
        self.len += count;
    }

    /// The `i`-th prediction.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "prediction index {i} out of range {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Iterates the predictions in push order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
    }
}

/// A branch direction predictor.
///
/// The contract follows MBPlib's `mbp::Predictor` exactly:
///
/// * [`predict`](Predictor::predict) — "obtains the outcome prediction for a
///   given instruction address. This function shall not modify the state of
///   the predictor in any way that would affect future predictions." It
///   takes `&mut self` only so implementations may cache lookups for the
///   matching `train` call (the paper's tournament predictor does exactly
///   this); semantically it must be idempotent.
/// * [`train`](Predictor::train) — updates the structures that decide
///   predictions, given the resolved branch.
/// * [`track`](Predictor::track) — updates the *scenario*: "the information
///   stored about the recent program behavior, such as the outcome of
///   recent branches".
///
/// When driven by the simulator, `predict` and `train` are invoked for
/// conditional branches and `track` for **all** branches. When a predictor
/// is a subcomponent of a meta-predictor or sits behind a filter, the owning
/// component decides which functions to call and with which
/// [`Branch`] values — that freedom is the point of the split (§IV-B).
///
/// # Examples
///
/// See the crate-level example, or `mbp-predictors` for the full collection.
pub trait Predictor {
    /// Predicts the outcome of the branch at `ip`.
    ///
    /// Must not change any state that affects future predictions; caching
    /// for a same-`ip` `train` call is allowed.
    fn predict(&mut self, ip: u64) -> bool;

    /// Updates the prediction structures with the resolved branch.
    fn train(&mut self, branch: &Branch);

    /// Updates the scenario (history registers, path registers, …) with the
    /// resolved branch.
    fn track(&mut self, branch: &Branch);

    /// Static description of the predictor (name and parameters), embedded
    /// under `metadata.predictor` in the simulator output (Listing 1).
    fn metadata(&self) -> Value {
        Value::from("unnamed predictor")
    }

    /// Dynamic execution statistics, embedded under `predictor_statistics`
    /// in the simulator output (and per-predictor in the comparison and
    /// sweep documents).
    ///
    /// # Contract
    ///
    /// * Returns a JSON **object** (possibly empty — the default). Scalars
    ///   or arrays would not merge predictably into the output document.
    /// * Must be cheap and read-only: it is called once per run, after the
    ///   trace is exhausted, and must not mutate predictor state.
    /// * Values must be deterministic for a given record stream and
    ///   configuration — the driver-equivalence suite compares full output
    ///   documents across the scalar, batched and sweep drivers.
    /// * Counters that back these statistics should live on the `train` /
    ///   `track` paths, never on `predict` (which the simulator may call
    ///   speculatively), and should be plain integer increments so the
    ///   statistics stay free for the hot path.
    fn execution_statistics(&self) -> Value {
        Value::object()
    }

    /// Approximate resident size of the predictor's state in **bytes**,
    /// used by the sweep's memory-budget admission control
    /// ([`crate::SweepConfig::mem_budget`]) to bound how many predictors
    /// run concurrently.
    ///
    /// # Contract
    ///
    /// * Advisory, not enforced: return the dominant storage cost (tables,
    ///   history buffers), typically `storage_bits() / 8`. Exactness is not
    ///   required; order of magnitude is what admission control needs.
    /// * Must be cheap, read-only and stable for the predictor's lifetime —
    ///   it is called once, before the predictor's simulation starts.
    /// * The default of `0` opts the predictor out of admission gating (it
    ///   is admitted immediately and counts nothing against the budget).
    fn size_hint(&self) -> u64 {
        0
    }

    /// Component attribution for the most recent misprediction — which
    /// internal structure produced the wrong final prediction.
    ///
    /// # Contract
    ///
    /// * Only meaningful immediately after a [`train`](Predictor::train)
    ///   call whose resolved outcome disagreed with the prediction this
    ///   predictor would have returned for the same branch; callers (the
    ///   forensics engine) query it only at that point, and implementations
    ///   may leave stale labels behind at any other time.
    /// * Labels are static component names local to the predictor
    ///   (`"provider"`, `"alt"`, `"base"`, `"chooser_wrong"`,
    ///   `"both_wrong"`, …). They feed the `attribution` objects in the
    ///   forensic report.
    /// * Implementations must compute the label as a pure by-product of the
    ///   work `train` already does (a single extra store), so predictors
    ///   with attribution stay bit-identical to their golden vectors.
    /// * The default `None` opts a predictor out: its forensic report shows
    ///   structure but no component breakdown.
    fn last_mispredict_blame(&self) -> Option<&'static str> {
        None
    }

    /// End-of-run table-health probes (see [`TableProbe`]), surfaced in the
    /// output's `introspection` section when the run collects probes
    /// ([`crate::SimConfig::collect_probes`]).
    ///
    /// Like [`execution_statistics`](Predictor::execution_statistics), this
    /// is called once per run and must be read-only and deterministic.
    /// Predictors without probe support return the default empty list.
    fn table_probes(&self) -> Vec<TableProbe> {
        Vec::new()
    }

    /// Processes a whole batch of resolved branches, appending one
    /// prediction bit per **conditional** branch to `out` (in batch order).
    ///
    /// # Contract
    ///
    /// The resulting predictor state and prediction bitstream must be
    /// **bit-identical** to driving the per-branch interface over the same
    /// records: for each record in order, `predict(ip)` + `train(branch)`
    /// if conditional, then `track(branch)` unless `track_only_conditional`
    /// is set and the branch is not conditional. The simulator's batched
    /// driver relies on this to stay byte-equivalent with the scalar one;
    /// the batch-equivalence suite enforces it for every override.
    ///
    /// Implementations may compute predictions out of order internally
    /// (hash all table indices in one vectorizable pass, simulate the
    /// history register from the batch's own taken bits) as long as the
    /// observable contract above holds. The default implementation is the
    /// literal scalar loop — correct for every predictor, and still a win
    /// for composed predictors because one virtual `predict_batch` call
    /// replaces three virtual calls per record with statically dispatched
    /// ones.
    ///
    /// Callers must `out.clear()` (or otherwise account for existing bits)
    /// before the call; bits are appended.
    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        for i in 0..batch.len() {
            let branch = batch.branch(i);
            let conditional = branch.is_conditional();
            if conditional {
                out.push(self.predict(branch.ip()));
                self.train(&branch);
            }
            if conditional || !track_only_conditional {
                self.track(&branch);
            }
        }
    }
}

/// Boxed predictors forward the interface, so `Box<dyn Predictor>` members
/// compose (the generalized tournament of §VI-D holds its components this
/// way).
impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&mut self, ip: u64) -> bool {
        (**self).predict(ip)
    }

    fn train(&mut self, branch: &Branch) {
        (**self).train(branch)
    }

    fn track(&mut self, branch: &Branch) {
        (**self).track(branch)
    }

    fn metadata(&self) -> Value {
        (**self).metadata()
    }

    fn execution_statistics(&self) -> Value {
        (**self).execution_statistics()
    }

    fn size_hint(&self) -> u64 {
        (**self).size_hint()
    }

    fn last_mispredict_blame(&self) -> Option<&'static str> {
        (**self).last_mispredict_blame()
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        (**self).table_probes()
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        // Must forward, not fall back to the default loop: the inner type
        // may have a vectorized kernel.
        (**self).predict_batch(batch, track_only_conditional, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;
    use mbp_trace::Opcode;

    struct Fixed(bool, u32);

    impl Predictor for Fixed {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {
            self.1 += 1;
        }
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "fixed", "direction": self.0})
        }
    }

    #[test]
    fn boxed_predictor_forwards() {
        let mut p: Box<dyn Predictor> = Box::new(Fixed(true, 0));
        assert!(p.predict(0));
        let b = Branch::new(0, 0, Opcode::conditional_direct(), true);
        p.train(&b);
        p.track(&b);
        assert_eq!(p.metadata()["name"], Value::from("fixed"));
        assert_eq!(p.execution_statistics(), Value::object());
        assert!(p.table_probes().is_empty(), "default probes are empty");
        assert_eq!(p.last_mispredict_blame(), None, "default blame is None");
    }

    #[test]
    fn prediction_bits_pack_and_roundtrip() {
        let mut bits = PredictionBits::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            bits.push(b);
        }
        assert_eq!(bits.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bits.get(i), b, "bit {i}");
        }
        let back: Vec<bool> = bits.iter().collect();
        assert_eq!(back, pattern);
        bits.clear();
        assert!(bits.is_empty());
        bits.push(true);
        assert!(bits.get(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prediction_bits_get_out_of_range_panics() {
        PredictionBits::new().get(0);
    }

    #[test]
    fn push_word_matches_bitwise_push() {
        // Every (initial offset, count) combination crossing a word
        // boundary must produce the same stream as bit-at-a-time pushes.
        for pre in [0usize, 1, 17, 63, 64] {
            for count in [0usize, 1, 5, 47, 64] {
                let bits = 0xdead_beef_cafe_f00d_u64;
                let mut bulk = PredictionBits::new();
                let mut single = PredictionBits::new();
                for i in 0..pre {
                    bulk.push(i % 3 == 0);
                    single.push(i % 3 == 0);
                }
                bulk.push_word(bits, count);
                for i in 0..count {
                    single.push((bits >> i) & 1 == 1);
                }
                assert_eq!(
                    bulk.iter().collect::<Vec<_>>(),
                    single.iter().collect::<Vec<_>>(),
                    "pre {pre} count {count}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_word_rejects_oversized_count() {
        PredictionBits::new().push_word(0, 65);
    }

    /// Records exactly which interface calls the default `predict_batch`
    /// makes and in what order, pinning the fallback contract.
    #[derive(Default)]
    struct Spy {
        calls: Vec<String>,
    }

    impl Predictor for Spy {
        fn predict(&mut self, ip: u64) -> bool {
            self.calls.push(format!("predict {ip:#x}"));
            ip & 1 == 0
        }
        fn train(&mut self, b: &Branch) {
            self.calls.push(format!("train {:#x}", b.ip()));
        }
        fn track(&mut self, b: &Branch) {
            self.calls.push(format!("track {:#x}", b.ip()));
        }
    }

    #[test]
    fn default_predict_batch_mirrors_scalar_sequence() {
        use mbp_trace::{BranchBatch, BranchRecord};

        let records = vec![
            BranchRecord::new(
                Branch::new(0x10, 0x90, Opcode::conditional_direct(), true),
                0,
            ),
            BranchRecord::new(
                Branch::new(0x21, 0x90, Opcode::unconditional_direct(), true),
                1,
            ),
            BranchRecord::new(
                Branch::new(0x32, 0x90, Opcode::conditional_direct(), false),
                2,
            ),
        ];
        let batch = BranchBatch::from_records(&records);

        for track_only_conditional in [false, true] {
            let mut batched = Spy::default();
            let mut bits = PredictionBits::new();
            batched.predict_batch(&batch, track_only_conditional, &mut bits);

            let mut scalar = Spy::default();
            let mut expected_bits = Vec::new();
            for rec in &records {
                let b = rec.branch;
                if b.is_conditional() {
                    expected_bits.push(scalar.predict(b.ip()));
                    scalar.train(&b);
                }
                if b.is_conditional() || !track_only_conditional {
                    scalar.track(&b);
                }
            }

            assert_eq!(
                batched.calls, scalar.calls,
                "track_only {track_only_conditional}"
            );
            assert_eq!(bits.iter().collect::<Vec<_>>(), expected_bits);
        }
    }
}
