//! Windowed time-series telemetry for the simulation drivers.
//!
//! A single end-of-run MPKI hides *when* a predictor fails: warmup
//! transients, program phases and table pathologies are invisible in the
//! aggregate. When [`crate::SimConfig::timeseries_window`] is set, the
//! drivers feed every conditional branch into a [`TimeSeriesBuilder`],
//! which buckets the run into fixed instruction windows and derives
//! warmup-end and phase-change analytics from the per-window curves.
//!
//! The accumulation is a pure function of the record stream, so the
//! batched, scalar and sweep drivers produce byte-identical timeseries
//! JSON (the driver-equivalence suite pins this).

use std::collections::HashSet;

use mbp_json::{json, Map, Value};

use crate::metrics::{accuracy, mpki};

/// Default window size in instructions (tunable via `mbpsim --window`).
pub const DEFAULT_WINDOW_INSTRUCTIONS: u64 = 100_000;

/// Relative half-width of the convergence band used by warmup detection:
/// a window is "converged" when its MPKI is within 10% of the steady-state
/// estimate.
const WARMUP_BAND_RELATIVE: f64 = 0.10;

/// Absolute floor of the convergence band, in MPKI, so near-zero
/// steady-state curves still converge.
const WARMUP_BAND_ABSOLUTE: f64 = 0.05;

/// Relative threshold for counting a window-to-window MPKI step as a phase
/// change: the step must exceed 25% of the run's mean window MPKI.
const PHASE_STEP_RELATIVE: f64 = 0.25;

/// Absolute floor for a phase-change step, in MPKI.
const PHASE_STEP_ABSOLUTE: f64 = 0.1;

/// One closed instruction window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Window {
    /// Cumulative instruction count at which the window opened.
    pub start_instruction: u64,
    /// Instructions attributed to the window. Usually the configured window
    /// size, but the final window may be shorter and a window closed by a
    /// record with a large gap may overshoot.
    pub instructions: u64,
    /// Conditional branches in the window (warmup included).
    pub conditional: u64,
    /// Mispredicted conditional branches in the window.
    pub mispredictions: u64,
    /// Taken conditional branches in the window.
    pub taken: u64,
    /// Distinct conditional branch instructions in the window.
    pub unique_branches: u64,
}

impl Window {
    /// Mispredictions per kilo-instruction within the window.
    pub fn mpki(&self) -> f64 {
        mpki(self.mispredictions, self.instructions)
    }

    /// Prediction accuracy within the window (1.0 for an empty window).
    pub fn accuracy(&self) -> f64 {
        accuracy(self.mispredictions, self.conditional)
    }

    /// Fraction of conditional branches taken (0.0 for an empty window).
    pub fn taken_rate(&self) -> f64 {
        if self.conditional == 0 {
            0.0
        } else {
            self.taken as f64 / self.conditional as f64
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "start_instruction": self.start_instruction,
            "instructions": self.instructions,
            "conditional_branches": self.conditional,
            "mispredictions": self.mispredictions,
            "taken_branches": self.taken,
            "unique_branches": self.unique_branches,
            "mpki": self.mpki(),
            "accuracy": self.accuracy(),
            "taken_rate": self.taken_rate(),
        })
    }
}

/// The completed time series with derived analytics.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    /// Configured window size in instructions.
    pub window_size: u64,
    /// Closed windows in execution order.
    pub windows: Vec<Window>,
    /// Index of the first window whose MPKI falls within the convergence
    /// band of the trailing (steady-state) mean. When no window enters the
    /// band — a curve still decaying at the end of the run — warmup is
    /// taken to end where the steady tail begins. `None` only when the run
    /// produced no windows at all.
    pub warmup_end_window: Option<usize>,
    /// Mean absolute window-to-window MPKI step, normalized by the mean
    /// window MPKI. 0.0 for fewer than two windows or an all-zero curve.
    pub phase_change_score: f64,
    /// Number of window-to-window MPKI steps large enough to count as a
    /// phase change.
    pub num_phase_changes: u64,
}

impl TimeSeries {
    fn from_windows(window_size: u64, windows: Vec<Window>) -> Self {
        let warmup_end_window = detect_warmup_end(&windows);
        let (phase_change_score, num_phase_changes) = phase_changes(&windows);
        Self {
            window_size,
            windows,
            warmup_end_window,
            phase_change_score,
            num_phase_changes,
        }
    }

    /// Renders the `metrics.timeseries` JSON section.
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("window_size", self.window_size);
        m.insert("num_windows", self.windows.len());
        m.insert("warmup_end_window", Value::from(self.warmup_end_window));
        m.insert("phase_change_score", self.phase_change_score);
        m.insert("num_phase_changes", self.num_phase_changes);
        m.insert(
            "windows",
            self.windows.iter().map(Window::to_json).collect::<Value>(),
        );
        Value::Object(m)
    }

    /// Renders the series as CSV. With a `label`, every row gains a leading
    /// `predictor` column (used by sweep output, where one file holds the
    /// series of several predictors).
    pub fn to_csv(&self, label: Option<&str>) -> String {
        let mut out = String::new();
        if label.is_some() {
            out.push_str("predictor,");
        }
        out.push_str(
            "window,start_instruction,instructions,conditional_branches,mispredictions,\
             taken_branches,unique_branches,mpki,accuracy,taken_rate\n",
        );
        for (i, w) in self.windows.iter().enumerate() {
            if let Some(l) = label {
                out.push_str(l);
                out.push(',');
            }
            out.push_str(&format!(
                "{i},{},{},{},{},{},{},{},{},{}\n",
                w.start_instruction,
                w.instructions,
                w.conditional,
                w.mispredictions,
                w.taken,
                w.unique_branches,
                w.mpki(),
                w.accuracy(),
                w.taken_rate(),
            ));
        }
        out
    }
}

/// Steady state is estimated as the mean MPKI of the trailing quarter of
/// the windows (at least one); warmup ends at the first window within the
/// convergence band of that estimate, falling back to the start of the
/// steady tail when the curve never enters the band.
fn detect_warmup_end(windows: &[Window]) -> Option<usize> {
    if windows.is_empty() {
        return None;
    }
    let tail = (windows.len() / 4).max(1);
    let tail_start = windows.len() - tail;
    let steady = windows[tail_start..].iter().map(Window::mpki).sum::<f64>() / tail as f64;
    let band = (WARMUP_BAND_RELATIVE * steady).max(WARMUP_BAND_ABSOLUTE);
    Some(
        windows
            .iter()
            .position(|w| (w.mpki() - steady).abs() <= band)
            .unwrap_or(tail_start),
    )
}

/// Total-variation phase score plus a count of large steps.
fn phase_changes(windows: &[Window]) -> (f64, u64) {
    if windows.len() < 2 {
        return (0.0, 0);
    }
    let mean = windows.iter().map(Window::mpki).sum::<f64>() / windows.len() as f64;
    if mean <= 0.0 {
        return (0.0, 0);
    }
    let threshold = (PHASE_STEP_RELATIVE * mean).max(PHASE_STEP_ABSOLUTE);
    let mut variation = 0.0;
    let mut steps = 0u64;
    for pair in windows.windows(2) {
        let delta = (pair[1].mpki() - pair[0].mpki()).abs();
        variation += delta;
        if delta > threshold {
            steps += 1;
        }
    }
    let score = variation / (windows.len() - 1) as f64 / mean;
    (score, steps)
}

/// Accumulates windows as the drivers replay the trace.
///
/// Call discipline, per record: advance the cumulative instruction count,
/// [`branch`](Self::branch) for a conditional branch, then
/// [`advance`](Self::advance) with the new cumulative count (so a branch
/// landing exactly on a window boundary is attributed to the closing
/// window). [`finish`](Self::finish) flushes the final partial window.
#[derive(Debug)]
pub struct TimeSeriesBuilder {
    window_size: u64,
    next_boundary: u64,
    window_start: u64,
    conditional: u64,
    mispredictions: u64,
    taken: u64,
    ips: HashSet<u64>,
    windows: Vec<Window>,
}

impl TimeSeriesBuilder {
    /// Creates a builder with the given window size (clamped to ≥ 1).
    pub fn new(window_size: u64) -> Self {
        let window_size = window_size.max(1);
        Self {
            window_size,
            next_boundary: window_size,
            window_start: 0,
            conditional: 0,
            mispredictions: 0,
            taken: 0,
            ips: HashSet::new(),
            windows: Vec::new(),
        }
    }

    /// Records one conditional branch into the currently open window.
    #[inline]
    pub fn branch(&mut self, ip: u64, taken: bool, mispredicted: bool) {
        self.conditional += 1;
        self.mispredictions += mispredicted as u64;
        self.taken += taken as u64;
        self.ips.insert(ip);
    }

    /// Advances to the cumulative instruction count after a record; closes
    /// the open window when a boundary was crossed. A record with a large
    /// gap closes at most one (overshooting) window — empty filler windows
    /// are never emitted, keeping the series a pure function of the stream.
    #[inline]
    pub fn advance(&mut self, cum_instructions: u64) {
        if cum_instructions >= self.next_boundary {
            self.close(cum_instructions);
        }
    }

    #[cold]
    fn close(&mut self, cum_instructions: u64) {
        self.windows.push(Window {
            start_instruction: self.window_start,
            instructions: cum_instructions - self.window_start,
            conditional: self.conditional,
            mispredictions: self.mispredictions,
            taken: self.taken,
            unique_branches: self.ips.len() as u64,
        });
        mbp_stats::events::instant(
            mbp_stats::events::EventName::SimWindowTick,
            (self.windows.len() - 1) as u64,
        );
        self.conditional = 0;
        self.mispredictions = 0;
        self.taken = 0;
        self.ips.clear();
        self.window_start = cum_instructions;
        self.next_boundary = (cum_instructions / self.window_size + 1) * self.window_size;
    }

    /// Flushes the final partial window and derives the analytics.
    pub fn finish(mut self, cum_instructions: u64) -> TimeSeries {
        if cum_instructions > self.window_start || self.conditional > 0 {
            self.close(cum_instructions);
        }
        TimeSeries::from_windows(self.window_size, self.windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `n` conditional branches, one per `gap`-instruction record.
    fn run(builder: &mut TimeSeriesBuilder, n: u64, gap: u64, mispredict: impl Fn(u64) -> bool) {
        let mut cum = 0u64;
        for i in 0..n {
            cum += gap;
            builder.branch(0x1000 + (i % 7) * 4, i % 2 == 0, mispredict(i));
            builder.advance(cum);
        }
    }

    #[test]
    fn windows_close_at_exact_boundaries() {
        let mut b = TimeSeriesBuilder::new(100);
        run(&mut b, 30, 10, |_| false);
        let ts = b.finish(300);
        assert_eq!(ts.windows.len(), 3);
        for (i, w) in ts.windows.iter().enumerate() {
            assert_eq!(w.start_instruction, i as u64 * 100);
            assert_eq!(w.instructions, 100);
            assert_eq!(w.conditional, 10);
        }
    }

    #[test]
    fn overshooting_record_closes_one_wide_window() {
        let mut b = TimeSeriesBuilder::new(100);
        b.branch(0x10, true, false);
        b.advance(250); // one record jumps across two boundaries
        b.branch(0x20, true, false);
        let ts = b.finish(260);
        assert_eq!(ts.windows.len(), 2, "no empty filler windows");
        assert_eq!(ts.windows[0].instructions, 250);
        assert_eq!(ts.windows[1].start_instruction, 250);
        assert_eq!(ts.windows[1].instructions, 10);
        assert_eq!(ts.windows[1].conditional, 1);
    }

    #[test]
    fn trace_shorter_than_one_window_yields_one_window() {
        let mut b = TimeSeriesBuilder::new(100_000);
        run(&mut b, 5, 10, |i| i == 0);
        let ts = b.finish(50);
        assert_eq!(ts.windows.len(), 1);
        assert_eq!(ts.windows[0].instructions, 50);
        // A single window is its own steady state: warmup ends immediately.
        assert_eq!(ts.warmup_end_window, Some(0));
        assert_eq!(ts.phase_change_score, 0.0);
        assert_eq!(ts.num_phase_changes, 0);
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let b = TimeSeriesBuilder::new(100);
        let ts = b.finish(0);
        assert!(ts.windows.is_empty());
        assert_eq!(ts.warmup_end_window, None);
        assert_eq!(ts.phase_change_score, 0.0);
    }

    #[test]
    fn all_taken_trace_converges_at_window_zero() {
        // A perfectly predicted all-taken trace: zero MPKI everywhere, so
        // the first window is already inside the absolute band.
        let mut b = TimeSeriesBuilder::new(100);
        run(&mut b, 100, 10, |_| false);
        let ts = b.finish(1000);
        assert_eq!(ts.warmup_end_window, Some(0));
        assert_eq!(ts.num_phase_changes, 0);
        assert!(ts.windows.iter().all(|w| w.mpki() == 0.0));
    }

    #[test]
    fn monotone_warmup_converges_at_the_steady_tail() {
        // MPKI decays 100, 50, 25, 12.5 ... per window; the steady tail
        // (last quarter) is near zero, so warmup ends where the curve does.
        let mut b = TimeSeriesBuilder::new(100);
        let mut cum = 0u64;
        for w in 0..8u64 {
            let miss_every = 1u64 << w; // halves the miss rate each window
            for i in 0..100u64 {
                cum += 1;
                b.branch(0x40, true, i % miss_every == 0);
                b.advance(cum);
            }
        }
        let ts = b.finish(cum);
        assert_eq!(ts.windows.len(), 8);
        let end = ts.warmup_end_window.expect("monotone curve converges");
        assert!(end >= 4, "early high-MPKI windows are warmup, got {end}");
        assert!(ts.phase_change_score > 0.0);
    }

    #[test]
    fn phase_change_steps_are_counted() {
        // Alternating calm/storm windows: every step is a phase change.
        let mut b = TimeSeriesBuilder::new(100);
        let mut cum = 0u64;
        for w in 0..6u64 {
            let stormy = w % 2 == 1;
            for i in 0..100u64 {
                cum += 1;
                b.branch(0x40, true, stormy && i % 2 == 0);
                b.advance(cum);
            }
        }
        let ts = b.finish(cum);
        assert_eq!(ts.num_phase_changes, 5);
        assert!(ts.phase_change_score > 1.0);
    }

    #[test]
    fn unique_branches_reset_per_window() {
        let mut b = TimeSeriesBuilder::new(10);
        b.branch(0x10, true, false);
        b.branch(0x20, true, false);
        b.advance(10);
        b.branch(0x10, true, false);
        let ts = b.finish(15);
        assert_eq!(ts.windows[0].unique_branches, 2);
        assert_eq!(ts.windows[1].unique_branches, 1);
    }

    #[test]
    fn csv_has_header_and_optional_label() {
        let mut b = TimeSeriesBuilder::new(10);
        b.branch(0x10, true, true);
        let ts = b.finish(10);
        let plain = ts.to_csv(None);
        assert!(plain.starts_with("window,start_instruction"));
        assert_eq!(plain.lines().count(), 2);
        let labeled = ts.to_csv(Some("gshare"));
        assert!(labeled.starts_with("predictor,window,"));
        assert!(labeled.lines().nth(1).unwrap().starts_with("gshare,0,"));
    }

    #[test]
    fn json_section_shape() {
        let mut b = TimeSeriesBuilder::new(10);
        b.branch(0x10, true, true);
        b.branch(0x20, false, false);
        let ts = b.finish(10);
        let v = ts.to_json();
        assert_eq!(v["window_size"].as_u64(), Some(10));
        assert_eq!(v["num_windows"].as_u64(), Some(1));
        assert_eq!(v["warmup_end_window"].as_u64(), Some(0));
        let w = &v["windows"][0];
        assert_eq!(w["conditional_branches"].as_u64(), Some(2));
        assert_eq!(w["mispredictions"].as_u64(), Some(1));
        assert_eq!(w["taken_branches"].as_u64(), Some(1));
        assert_eq!(w["accuracy"].as_f64(), Some(0.5));
        assert_eq!(w["taken_rate"].as_f64(), Some(0.5));
    }
}
