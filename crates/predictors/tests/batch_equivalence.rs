//! Batch-equivalence conformance suite.
//!
//! [`Predictor::predict_batch`] promises that its prediction bitstream and
//! resulting predictor state are **bit-identical** to driving the scalar
//! `predict` / `train` / `track` interface over the same records. The four
//! predictors with hand-written vectorized kernels (bimodal, GShare,
//! GSelect, two-level) are where that promise can actually break, so this
//! suite replays each of them — plus a `Box<dyn Predictor>` to pin the
//! forwarding path — over a mixed conditional/unconditional trace, cut into
//! batches at randomized boundaries (including empty and single-record
//! batches), under both `track_only_conditional` settings, and compares:
//!
//! * the full prediction bitstream, bit for bit, and
//! * the final state, by continuing both predictors scalar-only over a
//!   probe tail and requiring identical predictions there too.

use mbp_core::{Branch, BranchBatch, BranchRecord, Opcode, PredictionBits, Predictor};
use mbp_predictors::{Bimodal, GSelect, Gshare, HistoryScope, TwoLevel};
use mbp_utils::Xorshift64;

/// A mixed trace: the golden-vector conditional behaviors (loop, bias,
/// noise, correlation) interleaved with unconditional jumps, calls and
/// returns so `track_only_conditional` actually changes which records the
/// predictors see.
fn mixed_trace(len: usize, seed: u64) -> Vec<BranchRecord> {
    let mut rng = Xorshift64::new(seed);
    let mut out = Vec::with_capacity(len);
    let mut loop_i = 0u64;
    while out.len() < len {
        let gap = rng.below(8) as u32;
        let cond = |ip: u64, taken: bool, gap: u32| {
            BranchRecord::new(
                Branch::new(
                    ip,
                    ip.wrapping_sub(0x40),
                    Opcode::conditional_direct(),
                    taken,
                ),
                gap,
            )
        };
        out.push(cond(0x400, loop_i % 7 != 6, gap));
        loop_i += 1;
        // Unconditional branches are always taken (the SBBT invariant).
        out.push(BranchRecord::new(
            Branch::new(0x408, 0x700, Opcode::unconditional_direct(), true),
            2,
        ));
        out.push(cond(0x410, rng.below(10) != 0, 3));
        let coin = rng.next_bool();
        out.push(cond(0x420, coin, 2));
        if rng.next_bool() {
            out.push(BranchRecord::new(
                Branch::new(0x424, 0x900, Opcode::call(), true),
                1,
            ));
            out.push(BranchRecord::new(
                Branch::new(0x908, 0x428, Opcode::ret(), true),
                4,
            ));
        }
        out.push(cond(0x428, coin, 2));
        out.push(cond(0x430, rng.next_bool(), 5));
    }
    out.truncate(len);
    out
}

/// Drives the scalar per-branch interface, returning one prediction per
/// conditional branch — the reference `predict_batch` must match.
fn scalar_bits(p: &mut dyn Predictor, records: &[BranchRecord], track_only: bool) -> Vec<bool> {
    let mut bits = Vec::new();
    for rec in records {
        let b = rec.branch;
        if b.is_conditional() {
            bits.push(p.predict(b.ip()));
            p.train(&b);
        }
        if b.is_conditional() || !track_only {
            p.track(&b);
        }
    }
    bits
}

/// Drives `predict_batch` over `records` split into consecutive batches of
/// the given lengths (the last cut absorbs any remainder).
fn batched_bits(
    p: &mut dyn Predictor,
    records: &[BranchRecord],
    cuts: &[usize],
    track_only: bool,
) -> Vec<bool> {
    let mut all = Vec::new();
    let mut batch = BranchBatch::new();
    let mut out = PredictionBits::new();
    let mut pos = 0;
    let mut cut_i = 0;
    while pos < records.len() {
        let want = if cut_i < cuts.len() {
            cuts[cut_i].min(records.len() - pos)
        } else {
            records.len() - pos
        };
        cut_i += 1;
        batch.clear();
        batch.extend_from_records(&records[pos..pos + want]);
        pos += want;
        out.clear();
        p.predict_batch(&batch, track_only, &mut out);
        assert_eq!(
            out.len(),
            batch
                .iter_records()
                .filter(|r| r.branch.is_conditional())
                .count(),
            "one bit per conditional branch"
        );
        all.extend(out.iter());
    }
    all
}

/// Randomized batch lengths: always starts with an empty and a one-record
/// batch (the boundary cases), then random sizes from 0 to ~70.
fn random_cuts(rng: &mut Xorshift64, total: usize) -> Vec<usize> {
    let mut cuts = vec![0, 1];
    let mut covered = 1;
    while covered < total {
        let c = rng.below(70) as usize;
        cuts.push(c);
        covered += c;
    }
    cuts
}

/// The conformance check: same bitstream over the main trace, same
/// predictions over a scalar-only probe tail (state equivalence).
fn assert_batch_equivalent<P, F>(name: &str, make: F)
where
    P: Predictor,
    F: Fn() -> P,
{
    let records = mixed_trace(1500, 0x601d_7ec7_0000_0001);
    let tail = mixed_trace(300, 0x601d_7ec7_0000_0002);
    let mut rng = Xorshift64::new(0x0ba7_c4e9);
    for track_only in [false, true] {
        for round in 0..4 {
            let cuts = random_cuts(&mut rng, records.len());
            let mut scalar_p = make();
            let scalar = scalar_bits(&mut scalar_p, &records, track_only);
            let mut batched_p = make();
            let batched = batched_bits(&mut batched_p, &records, &cuts, track_only);
            assert_eq!(
                scalar, batched,
                "{name}: bitstream diverged (track_only {track_only}, round {round})"
            );
            // Both replicas must now be in the same state: continue them
            // over a fresh tail through the scalar interface only.
            let scalar_tail = scalar_bits(&mut scalar_p, &tail, track_only);
            let batched_tail = scalar_bits(&mut batched_p, &tail, track_only);
            assert_eq!(
                scalar_tail, batched_tail,
                "{name}: post-batch state diverged (track_only {track_only}, round {round})"
            );
        }
    }
}

#[test]
fn bimodal_kernel_matches_scalar() {
    assert_batch_equivalent("bimodal", || Bimodal::new(12));
}

#[test]
fn gshare_kernel_matches_scalar() {
    assert_batch_equivalent("gshare-short", || Gshare::new(9, 12));
    // Full-width history exercises the `hmask == u64::MAX` path.
    assert_batch_equivalent("gshare-64", || Gshare::new(64, 14));
}

#[test]
fn gselect_kernel_matches_scalar() {
    assert_batch_equivalent("gselect", || GSelect::new(6, 10));
}

#[test]
fn twolevel_kernels_match_scalar() {
    let scopes = [
        HistoryScope::Global,
        HistoryScope::PerAddress,
        HistoryScope::PerSet,
    ];
    for h in scopes {
        for p in scopes {
            assert_batch_equivalent("twolevel", move || TwoLevel::new(h, p, 10, 6, 6));
        }
    }
}

#[test]
fn boxed_predictor_uses_inner_kernel() {
    // `Box<dyn Predictor>` must forward `predict_batch` to the inner
    // kernel, and the result must still be scalar-equivalent.
    assert_batch_equivalent("boxed-gshare", || -> Box<dyn Predictor> {
        Box::new(Gshare::new(13, 13))
    });
}

#[test]
fn golden_fixture_batches_bit_identical() {
    // The golden-vector trace (all-conditional) replayed as one big batch
    // and as many tiny batches: all three bitstreams identical.
    let records = mixed_trace(1000, 0x601d_7ec7_0000_0001);
    let mut a = Gshare::new(15, 14);
    let scalar = scalar_bits(&mut a, &records, false);
    let mut b = Gshare::new(15, 14);
    let one = batched_bits(&mut b, &records, &[records.len()], false);
    let mut c = Gshare::new(15, 14);
    let tiny = batched_bits(&mut c, &records, &[0, 1, 1, 2, 3], false);
    assert_eq!(scalar, one);
    assert_eq!(scalar, tiny);
}

#[test]
fn empty_and_single_record_batches() {
    for track_only in [false, true] {
        let mut p = Bimodal::new(8);
        let mut out = PredictionBits::new();
        let batch = BranchBatch::new();
        p.predict_batch(&batch, track_only, &mut out);
        assert!(out.is_empty(), "empty batch pushes no bits");

        let mut batch = BranchBatch::new();
        batch.push_record(&BranchRecord::new(
            Branch::new(0x10, 0x20, Opcode::conditional_direct(), true),
            0,
        ));
        p.predict_batch(&batch, track_only, &mut out);
        assert_eq!(out.len(), 1, "single conditional record pushes one bit");

        let mut batch = BranchBatch::new();
        batch.push_record(&BranchRecord::new(
            Branch::new(0x10, 0x20, Opcode::unconditional_direct(), true),
            0,
        ));
        let before = out.len();
        p.predict_batch(&batch, track_only, &mut out);
        assert_eq!(out.len(), before, "unconditional record pushes no bit");
    }
}
