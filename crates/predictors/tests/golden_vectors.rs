//! Golden-vector conformance suite.
//!
//! Every stock predictor is replayed over the same fixed 1000-branch
//! synthetic trace and its *exact* prediction bitstream plus final
//! misprediction count and MPKI are compared against a committed fixture in
//! `tests/golden/<name>.txt`. Any behavioral change to a predictor — an
//! indexing tweak, a counter-width change, a different update order — flips
//! bits in the stream and fails the corresponding fixture, so refactors that
//! are supposed to be behavior-preserving get checked at single-prediction
//! granularity rather than only through aggregate accuracy bounds.
//!
//! To bless an intentional behavior change, regenerate the fixtures:
//!
//! ```text
//! MBP_GOLDEN_REGEN=1 cargo test -p mbp-predictors --test golden_vectors
//! ```
//!
//! and commit the diff (which doubles as a review artifact: the bit-level
//! blast radius of the change is visible in the fixture).

use std::fmt::Write as _;
use std::path::PathBuf;

use mbp_core::{simulate, Branch, BranchRecord, Opcode, Predictor, SimConfig, SliceSource};
use mbp_predictors::{
    Batage, BatageConfig, BiasFilter, Bimodal, GSelect, Gshare, HashedPerceptron, LoopPredictor,
    Tage, TageConfig, Tournament, TwoBcGskew, TwoLevel,
};
use mbp_utils::Xorshift64;

/// Number of branches in the golden trace.
const TRACE_LEN: usize = 1000;

/// Seed for the synthetic trace generator (never change without
/// regenerating every fixture).
const TRACE_SEED: u64 = 0x601d_7ec7_0000_0001;

/// The fixed synthetic trace all fixtures are recorded against.
///
/// Five static branches with distinct behaviors, interleaved round-robin so
/// every predictor class has something to sink its teeth into:
///
/// * `0x400` — a loop branch, taken 6 of every 7 iterations (loop/TAGE bait),
/// * `0x410` — heavily biased, taken with probability 0.9 (bimodal bait),
/// * `0x420` — an unbiased coin flip (irreducible noise),
/// * `0x428` — echoes `0x420`'s outcome (history-correlation bait),
/// * `0x430` — an independent coin flip.
///
/// All draws come from one seeded [`Xorshift64`] stream in a fixed order, so
/// the trace is a pure function of [`TRACE_SEED`].
fn golden_trace() -> Vec<BranchRecord> {
    let mut rng = Xorshift64::new(TRACE_SEED);
    let mut out = Vec::with_capacity(TRACE_LEN);
    let mut loop_i = 0u64;
    let push = |out: &mut Vec<BranchRecord>, ip: u64, taken: bool, gap: u32| {
        out.push(BranchRecord::new(
            Branch::new(
                ip,
                ip.wrapping_sub(0x40),
                Opcode::conditional_direct(),
                taken,
            ),
            gap,
        ));
    };
    while out.len() < TRACE_LEN {
        let gap = rng.below(8) as u32;
        push(&mut out, 0x400, loop_i % 7 != 6, gap);
        loop_i += 1;
        push(&mut out, 0x410, rng.below(10) != 0, 3);
        let coin = rng.next_bool();
        push(&mut out, 0x420, coin, 2);
        push(&mut out, 0x428, coin, 2);
        push(&mut out, 0x430, rng.next_bool(), 5);
    }
    out.truncate(TRACE_LEN);
    out
}

/// Replays `predictor` over the golden trace with the exact call discipline
/// of the standard simulator (predict, then train, then track) and returns
/// the per-branch prediction bits in trace order.
fn prediction_bits(predictor: &mut dyn Predictor, trace: &[BranchRecord]) -> Vec<bool> {
    trace
        .iter()
        .map(|rec| {
            let b = rec.branch;
            let prediction = predictor.predict(b.ip());
            predictor.train(&b);
            predictor.track(&b);
            prediction
        })
        .collect()
}

/// Packs prediction bits MSB-first into lowercase hex (250 chars for 1000).
fn bits_to_hex(bits: &[bool]) -> String {
    let mut out = String::with_capacity(bits.len().div_ceil(4));
    for chunk in bits.chunks(4) {
        let mut nibble = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            nibble |= (bit as u8) << (3 - i);
        }
        let _ = write!(out, "{nibble:x}");
    }
    out
}

/// One parsed fixture file.
struct Fixture {
    mispredictions: u64,
    mpki: String,
    bits: String,
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn parse_fixture(name: &str, text: &str) -> Fixture {
    let mut mispredictions = None;
    let mut mpki = None;
    let mut bits = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .unwrap_or_else(|| panic!("{name}: malformed fixture line {line:?}"));
        let value = value.trim();
        match key.trim() {
            "mispredictions" => mispredictions = Some(value.parse().unwrap()),
            "mpki" => mpki = Some(value.to_string()),
            "bits" => bits = Some(value.to_string()),
            other => panic!("{name}: unknown fixture key {other:?}"),
        }
    }
    Fixture {
        mispredictions: mispredictions.unwrap_or_else(|| panic!("{name}: missing mispredictions")),
        mpki: mpki.unwrap_or_else(|| panic!("{name}: missing mpki")),
        bits: bits.unwrap_or_else(|| panic!("{name}: missing bits")),
    }
}

fn render_fixture(name: &str, f: &Fixture) -> String {
    format!(
        "# Golden vector for the `{name}` predictor over the fixed {TRACE_LEN}-branch\n\
         # synthetic trace (seed {TRACE_SEED:#x}). Regenerate after an intentional\n\
         # behavior change with:\n\
         #   MBP_GOLDEN_REGEN=1 cargo test -p mbp-predictors --test golden_vectors\n\
         mispredictions: {}\n\
         mpki: {}\n\
         bits: {}\n",
        f.mispredictions, f.mpki, f.bits,
    )
}

/// Runs one predictor against its fixture (or regenerates the fixture when
/// `MBP_GOLDEN_REGEN` is set).
fn check(name: &str, predictor: &mut dyn Predictor) {
    let trace = golden_trace();

    // The bit-exact stream, collected by driving the Predictor interface
    // directly with the simulator's call discipline.
    let bits = prediction_bits(predictor, &trace);

    // An independent pass through the real simulator on a fresh trace copy
    // cross-checks that the manual drive above matches `simulate` semantics:
    // the misprediction count derived from the bitstream must equal the
    // simulator's, and the fixture MPKI is taken from the simulator.
    let mispredictions: u64 = bits
        .iter()
        .zip(&trace)
        .map(|(&p, rec)| (p != rec.branch.is_taken()) as u64)
        .sum();

    let actual = Fixture {
        mispredictions,
        mpki: String::new(),
        bits: bits_to_hex(&bits),
    };

    let path = fixture_path(name);
    if std::env::var_os("MBP_GOLDEN_REGEN").is_some() {
        // MPKI for the fixture comes from the simulator cross-check below;
        // regeneration therefore needs a fresh predictor. Rather than thread
        // a factory through, require regeneration to run before the
        // simulator pass: write a placeholder now, fill mpki after.
        let mpki = simulator_mpki(name, &trace, mispredictions);
        let blessed = Fixture { mpki, ..actual };
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render_fixture(name, &blessed)).unwrap();
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing fixture {} ({e}); run with MBP_GOLDEN_REGEN=1 to create it",
            path.display()
        )
    });
    let expected = parse_fixture(name, text.as_str());

    assert_eq!(
        actual.bits, expected.bits,
        "{name}: prediction bitstream diverged from the committed fixture"
    );
    assert_eq!(
        actual.mispredictions, expected.mispredictions,
        "{name}: misprediction count diverged"
    );
    let mpki = simulator_mpki(name, &trace, mispredictions);
    assert_eq!(mpki, expected.mpki, "{name}: final MPKI diverged");
}

/// Runs the real batched simulator over the trace with a *fresh* predictor
/// and returns its MPKI formatted to fixed precision, asserting on the way
/// that the simulator's misprediction count matches the bitstream-derived
/// one (so the manual drive in [`prediction_bits`] and `simulate` can never
/// silently disagree).
fn simulator_mpki(name: &str, trace: &[BranchRecord], expected_mispredictions: u64) -> String {
    let mut fresh = build(name);
    let result = simulate(
        &mut SliceSource::new(trace),
        &mut *fresh,
        &SimConfig::default(),
    )
    .expect("in-memory trace cannot fail");
    assert_eq!(
        result.metrics.mispredictions, expected_mispredictions,
        "{name}: simulate() disagrees with the interface-level replay"
    );
    format!("{:.6}", result.metrics.mpki)
}

/// Builds the predictor under test for `name`; configurations mirror
/// `mbp_predictors::by_name` where a stock entry exists.
fn build(name: &str) -> Box<dyn Predictor> {
    match name {
        "bimodal" => Box::new(Bimodal::new(18)),
        "two-level" => Box::new(TwoLevel::gas(12, 10, 14)),
        "gshare" => Box::new(Gshare::new(25, 18)),
        "gselect" => Box::new(GSelect::new(8, 10)),
        "gskew" => Box::new(TwoBcGskew::new(16, 21)),
        "tournament" => Box::new(Tournament::classic(16)),
        "perceptron" => Box::new(HashedPerceptron::default_config()),
        "tage" => Box::new(Tage::new(TageConfig::default_64kb())),
        "batage" => Box::new(Batage::new(BatageConfig::default_64kb())),
        "loop" => Box::new(LoopPredictor::new(Box::new(Gshare::new(25, 18)), 6)),
        "filter" => Box::new(BiasFilter::new(Box::new(Gshare::new(25, 18)))),
        other => panic!("no golden predictor named {other:?}"),
    }
}

macro_rules! golden {
    ($($test:ident => $name:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                check($name, &mut *build($name));
            }
        )+
    };
}

golden! {
    golden_bimodal => "bimodal",
    golden_two_level => "two-level",
    golden_gshare => "gshare",
    golden_gselect => "gselect",
    golden_gskew => "gskew",
    golden_tournament => "tournament",
    golden_perceptron => "perceptron",
    golden_tage => "tage",
    golden_batage => "batage",
    golden_loop => "loop",
    golden_filter => "filter",
}

#[test]
fn golden_trace_is_deterministic() {
    let a = golden_trace();
    let b = golden_trace();
    assert_eq!(a.len(), TRACE_LEN);
    assert_eq!(a, b);
    // The five static branches all appear.
    for ip in [0x400u64, 0x410, 0x420, 0x428, 0x430] {
        assert!(a.iter().any(|r| r.branch.ip() == ip), "missing {ip:#x}");
    }
}
