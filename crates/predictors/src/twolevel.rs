//! Two-level adaptive predictors (Yeh & Patt, 1992) — "all versions of Two
//! Level: GAg, GAs, PAs, SAp, etc." (Table II).
//!
//! The first level is a set of branch history registers (BHRs); the second a
//! set of pattern history tables (PHTs) of two-bit counters indexed by the
//! history. Each level can be keyed globally (one structure), per-address
//! (hashed by branch ip) or per-set (hashed by a coarser region of the ip),
//! giving the nine classic variants.

use mbp_core::{
    json, probe_counter_table, Branch, BranchBatch, PredictionBits, Predictor, TableProbe, Value,
};
use mbp_utils::{xor_fold, xor_fold_columns, I2};

use crate::KERNEL_CHUNK;

/// How a level of the predictor is keyed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistoryScope {
    /// One shared structure (the `G` in GAg).
    Global,
    /// One structure per branch address hash (the `P`).
    PerAddress,
    /// One structure per address set (the `S`).
    PerSet,
}

/// Alias used for the second level to mirror the `g`/`p`/`s` suffix.
pub type PatternScope = HistoryScope;

impl HistoryScope {
    fn letter_first(self) -> char {
        match self {
            HistoryScope::Global => 'G',
            HistoryScope::PerAddress => 'P',
            HistoryScope::PerSet => 'S',
        }
    }

    fn letter_second(self) -> char {
        match self {
            HistoryScope::Global => 'g',
            HistoryScope::PerAddress => 'p',
            HistoryScope::PerSet => 's',
        }
    }
}

/// A two-level adaptive predictor.
///
/// # Examples
///
/// ```
/// use mbp_predictors::{HistoryScope, TwoLevel};
///
/// // GAs: global history, per-set pattern tables.
/// let p = TwoLevel::new(HistoryScope::Global, HistoryScope::PerSet, 12, 8, 10);
/// assert_eq!(p.variant(), "GAs");
/// ```
#[derive(Clone, Debug)]
pub struct TwoLevel {
    hscope: HistoryScope,
    pscope: PatternScope,
    hist_len: u32,
    log_bhrs: u32,
    log_phts: u32,
    bhrs: Vec<u32>,
    /// `phts[pht_index][history]`, flattened.
    phts: Vec<I2>,
}

/// Set index: a coarser grouping of addresses than per-address hashing.
fn set_of(ip: u64, bits: u32) -> usize {
    xor_fold(ip >> 6, bits) as usize
}

/// Column-wise [`TwoLevel::bhr_index`] / [`TwoLevel::pht_index`]: fills
/// `idx[..pcs.len()]` with the level's structure index for every lane.
///
/// Both level indices are pure functions of the address, so they hash in
/// vectorizable passes; only the BHR reads and counter updates need the
/// scalar walk.
fn fold_scope_indices(
    scope: HistoryScope,
    bits: u32,
    pcs: &[u64],
    scratch: &mut [u64; KERNEL_CHUNK],
    idx: &mut [u64; KERNEL_CHUNK],
) {
    let n = pcs.len();
    match scope {
        HistoryScope::Global => idx[..n].fill(0),
        HistoryScope::PerAddress => xor_fold_columns(pcs, bits, idx),
        HistoryScope::PerSet => {
            for (k, &pc) in scratch[..n].iter_mut().zip(pcs) {
                *k = pc >> 6;
            }
            xor_fold_columns(&scratch[..n], bits, idx);
        }
    }
}

impl TwoLevel {
    /// Creates a two-level predictor with `2^log_bhrs` history registers of
    /// `hist_len` bits (when the first level is not global) and `2^log_phts`
    /// pattern tables (when the second level is not global) of
    /// `2^hist_len` counters each.
    ///
    /// # Panics
    ///
    /// Panics if `hist_len` is 0 or over 24, or either log size is over 20.
    pub fn new(
        hscope: HistoryScope,
        pscope: PatternScope,
        hist_len: u32,
        log_bhrs: u32,
        log_phts: u32,
    ) -> Self {
        assert!((1..=24).contains(&hist_len), "hist_len must be in 1..=24");
        assert!(
            log_bhrs <= 20 && log_phts <= 20,
            "table sizes capped at 2^20"
        );
        let num_bhrs = match hscope {
            HistoryScope::Global => 1,
            _ => 1usize << log_bhrs,
        };
        let num_phts = match pscope {
            HistoryScope::Global => 1,
            _ => 1usize << log_phts,
        };
        Self {
            hscope,
            pscope,
            hist_len,
            log_bhrs,
            log_phts,
            bhrs: vec![0; num_bhrs],
            phts: vec![I2::default(); num_phts << hist_len],
        }
    }

    /// The classic GAg configuration.
    pub fn gag(hist_len: u32) -> Self {
        Self::new(HistoryScope::Global, HistoryScope::Global, hist_len, 0, 0)
    }

    /// The classic GAs configuration.
    pub fn gas(hist_len: u32, log_phts: u32, _unused_log_bhrs: u32) -> Self {
        Self::new(
            HistoryScope::Global,
            HistoryScope::PerSet,
            hist_len,
            0,
            log_phts,
        )
    }

    /// The classic PAg configuration.
    pub fn pag(hist_len: u32, log_bhrs: u32) -> Self {
        Self::new(
            HistoryScope::PerAddress,
            HistoryScope::Global,
            hist_len,
            log_bhrs,
            0,
        )
    }

    /// The classic PAp configuration.
    pub fn pap(hist_len: u32, log_bhrs: u32, log_phts: u32) -> Self {
        Self::new(
            HistoryScope::PerAddress,
            HistoryScope::PerAddress,
            hist_len,
            log_bhrs,
            log_phts,
        )
    }

    /// The classic SAp configuration.
    pub fn sap(hist_len: u32, log_bhrs: u32, log_phts: u32) -> Self {
        Self::new(
            HistoryScope::PerSet,
            HistoryScope::PerAddress,
            hist_len,
            log_bhrs,
            log_phts,
        )
    }

    /// The Yeh–Patt variant name, e.g. `"GAg"` or `"PAs"`.
    pub fn variant(&self) -> String {
        format!(
            "{}A{}",
            self.hscope.letter_first(),
            self.pscope.letter_second()
        )
    }

    fn bhr_index(&self, ip: u64) -> usize {
        match self.hscope {
            HistoryScope::Global => 0,
            HistoryScope::PerAddress => xor_fold(ip, self.log_bhrs) as usize,
            HistoryScope::PerSet => set_of(ip, self.log_bhrs),
        }
    }

    fn pht_index(&self, ip: u64) -> usize {
        match self.pscope {
            HistoryScope::Global => 0,
            HistoryScope::PerAddress => xor_fold(ip, self.log_phts) as usize,
            HistoryScope::PerSet => set_of(ip, self.log_phts),
        }
    }

    fn counter_index(&self, ip: u64) -> usize {
        let history = self.bhrs[self.bhr_index(ip)] & ((1u32 << self.hist_len) - 1);
        (self.pht_index(ip) << self.hist_len) | history as usize
    }

    /// Storage budget in bits.
    pub fn storage_bits(&self) -> u64 {
        self.bhrs.len() as u64 * self.hist_len as u64 + 2 * self.phts.len() as u64
    }
}

impl Predictor for TwoLevel {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.phts[self.counter_index(ip)].is_taken()
    }

    fn train(&mut self, branch: &Branch) {
        let idx = self.counter_index(branch.ip());
        self.phts[idx].sum_or_sub(branch.is_taken());
    }

    fn track(&mut self, branch: &Branch) {
        let idx = self.bhr_index(branch.ip());
        self.bhrs[idx] = (self.bhrs[idx] << 1) | branch.is_taken() as u32;
    }

    fn metadata(&self) -> Value {
        json!({
            "name": format!("MBPlib Two-Level {}", self.variant()),
            "history_length": self.hist_len,
            "log_bhr_count": self.log_bhrs,
            "log_pht_count": self.log_phts,
        })
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        vec![
            probe_counter_table(format!("twolevel.{}", self.variant()), &self.phts)
                .with_extra("num_bhrs", self.bhrs.len() as u64)
                .with_extra("history_length", self.hist_len),
        ]
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        // A non-global level with zero index bits would call
        // `xor_fold(_, 0)`, which panics — but only when the scalar path
        // actually consults that level. Keep the literal scalar loop for
        // those degenerate configurations so the panic (or its absence)
        // matches exactly.
        if (self.hscope != HistoryScope::Global && self.log_bhrs == 0)
            || (self.pscope != HistoryScope::Global && self.log_phts == 0)
        {
            for i in 0..batch.len() {
                let branch = batch.branch(i);
                let conditional = branch.is_conditional();
                if conditional {
                    out.push(self.predict(branch.ip()));
                    self.train(&branch);
                }
                if conditional || !track_only_conditional {
                    self.track(&branch);
                }
            }
            return;
        }
        // Both structure indices depend only on the address, so they hash
        // in two vectorizable passes per chunk. The BHRs are shared mutable
        // state (a branch's history may have been rewritten by any earlier
        // branch mapping to the same register), so the counter walk stays
        // scalar, reading each BHR at the position the scalar sequence
        // would: after the tracks of all preceding records.
        let (pcs, taken, ops) = (batch.pcs(), batch.taken(), batch.ops());
        let hist_mask = (1u32 << self.hist_len) - 1;
        // Pin both table bases so stores inside the loop cannot force the
        // Vec pointers to reload.
        let bhrs: &mut [u32] = &mut self.bhrs;
        let phts: &mut [I2] = &mut self.phts;
        let bhr_mask = bhrs.len() - 1;
        let pht_mask = phts.len() - 1;
        let hist_len = self.hist_len;
        let mut scratch = [0u64; KERNEL_CHUNK];
        let mut bhr_idx = [0u64; KERNEL_CHUNK];
        let mut pht_idx = [0u64; KERNEL_CHUNK];
        let (mut acc, mut nbits) = (0u64, 0usize);
        let mut start = 0;
        while start < batch.len() {
            let n = KERNEL_CHUNK.min(batch.len() - start);
            let chunk = &pcs[start..start + n];
            fold_scope_indices(
                self.hscope,
                self.log_bhrs,
                chunk,
                &mut scratch,
                &mut bhr_idx,
            );
            fold_scope_indices(
                self.pscope,
                self.log_phts,
                chunk,
                &mut scratch,
                &mut pht_idx,
            );
            let (taken, ops) = (&taken[start..start + n], &ops[start..start + n]);
            for i in 0..n {
                let conditional = ops[i] & 0b1 != 0;
                let t = taken[i] != 0;
                let bi = bhr_idx[i] as usize & bhr_mask;
                if conditional {
                    let history = (bhrs[bi] & hist_mask) as usize;
                    let ci = (((pht_idx[i] as usize) << hist_len) | history) & pht_mask;
                    acc |= (phts[ci].is_taken() as u64) << nbits;
                    nbits += 1;
                    if nbits == 64 {
                        out.push_word(acc, 64);
                        (acc, nbits) = (0, 0);
                    }
                    phts[ci].sum_or_sub(t);
                }
                if conditional | !track_only_conditional {
                    bhrs[bi] = (bhrs[bi] << 1) | t as u32;
                }
            }
            start += n;
        }
        out.push_word(acc, nbits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{correlated_pair, loop_pattern, run};

    #[test]
    fn variant_names() {
        assert_eq!(TwoLevel::gag(8).variant(), "GAg");
        assert_eq!(TwoLevel::pag(8, 4).variant(), "PAg");
        assert_eq!(TwoLevel::pap(8, 4, 4).variant(), "PAp");
        assert_eq!(TwoLevel::sap(8, 4, 4).variant(), "SAp");
        assert_eq!(TwoLevel::gas(8, 4, 0).variant(), "GAs");
    }

    #[test]
    fn all_nine_variants_run() {
        let scopes = [
            HistoryScope::Global,
            HistoryScope::PerAddress,
            HistoryScope::PerSet,
        ];
        let recs = loop_pattern(0x1000, 5, 100);
        for h in scopes {
            for p in scopes {
                let mut pred = TwoLevel::new(h, p, 10, 6, 6);
                let (mis, total) = run(&mut pred, &recs);
                assert!(mis < total, "{} learned nothing", pred.variant());
            }
        }
    }

    #[test]
    fn gag_learns_global_correlation() {
        let recs = correlated_pair(3000, 9);
        let (mis, total) = run(&mut TwoLevel::gag(10), &recs);
        assert!((mis as f64) < 0.3 * total as f64, "mis = {mis}");
    }

    #[test]
    fn pap_learns_local_loop_period() {
        // Per-address history captures each branch's own period precisely.
        let recs = loop_pattern(0x1000, 7, 300);
        let (mis, total) = run(&mut TwoLevel::pap(10, 8, 8), &recs);
        assert!((mis as f64) < 0.05 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn storage_accounting() {
        let p = TwoLevel::gag(10);
        // One 10-bit BHR + one PHT of 2^10 two-bit counters.
        assert_eq!(p.storage_bits(), 10 + 2 * 1024);
        let p = TwoLevel::pap(4, 2, 2);
        // 4 BHRs of 4 bits + 4 PHTs of 16 counters.
        assert_eq!(p.storage_bits(), 16 + 2 * 64);
    }

    #[test]
    #[should_panic(expected = "hist_len")]
    fn oversized_history_rejected() {
        TwoLevel::gag(25);
    }
}
