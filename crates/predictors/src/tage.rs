//! TAGE (Seznec & Michaud, 2006): tagged geometric history length
//! prediction — the backbone of every championship winner since CBP-2.
//!
//! A bimodal base table plus N partially tagged tables indexed with
//! geometrically increasing history lengths. The longest matching table
//! provides the prediction; usefulness counters arbitrate allocation on
//! mispredictions. The paper highlights TAGE as the predictor whose MBPlib
//! implementation is ~150 lines against ~700 in the championship version —
//! the folded-history and counter utilities do the heavy lifting here too.

use mbp_core::{json, probe_counter_table, Branch, Predictor, TableProbe, Value};
use mbp_utils::{
    xor_fold, FoldedHistory, HistoryRegister, SatCounter, USatCounter, Xorshift64, I2,
};

/// Geometry of one tagged table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TageTableSpec {
    /// `2^log_size` entries.
    pub log_size: u32,
    /// History length used to index this table.
    pub hist_len: u32,
    /// Tag width in bits (at most 15).
    pub tag_bits: u32,
}

/// Full TAGE configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TageConfig {
    /// `2^base_log_size` bimodal base counters.
    pub base_log_size: u32,
    /// Tagged tables ordered by strictly increasing history length.
    pub tables: Vec<TageTableSpec>,
    /// Usefulness counters are halved every this many updates.
    pub reset_period: u64,
    /// Seed of the deterministic allocation RNG.
    pub seed: u64,
}

impl TageConfig {
    /// A ~64 kB configuration: 12 tagged tables with geometric history
    /// lengths from 4 to 640 bits.
    pub fn default_64kb() -> Self {
        let lengths = [4u32, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640];
        Self {
            base_log_size: 13,
            tables: lengths
                .iter()
                .enumerate()
                .map(|(i, &hist_len)| TageTableSpec {
                    log_size: 10,
                    hist_len,
                    tag_bits: (8 + i as u32 / 3).min(12),
                })
                .collect(),
            reset_period: 256 * 1024,
            seed: 0x7a9e_5eed,
        }
    }

    /// A small configuration for fast tests and teaching exercises.
    pub fn small() -> Self {
        let lengths = [4u32, 8, 16, 32, 64];
        Self {
            base_log_size: 10,
            tables: lengths
                .iter()
                .map(|&hist_len| TageTableSpec {
                    log_size: 8,
                    hist_len,
                    tag_bits: 8,
                })
                .collect(),
            reset_period: 64 * 1024,
            seed: 0x7a6e,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u16,
    ctr: SatCounter<3>,
    useful: USatCounter<2>,
}

/// Per-lookup state shared between `predict` and `train`.
#[derive(Clone, Debug, Default)]
struct Lookup {
    /// `(index, tag)` per tagged table.
    slots: Vec<(usize, u16)>,
    /// Tables whose entry matched, shortest history first.
    hits: Vec<usize>,
    provider: Option<usize>,
    alt: Option<usize>,
    provider_pred: bool,
    alt_pred: bool,
    final_pred: bool,
    provider_is_new: bool,
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::{Tage, TageConfig};
///
/// let p = Tage::new(TageConfig::small());
/// assert_eq!(p.metadata()["name"].as_str(), Some("MBPlib TAGE"));
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    base: Vec<I2>,
    tables: Vec<Vec<Entry>>,
    ghist: HistoryRegister,
    idx_fold: Vec<FoldedHistory>,
    tag_fold0: Vec<FoldedHistory>,
    tag_fold1: Vec<FoldedHistory>,
    use_alt_on_new: SatCounter<4>,
    rng: Xorshift64,
    updates: u64,
    allocations: u64,
    alloc_failures: u64,
    scratch: Lookup,
    /// Attribution of the latest misprediction (forensics hook).
    blame: Option<&'static str>,
}

impl Tage {
    /// Builds a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is empty, history lengths are not
    /// strictly increasing, or a tag is wider than 15 bits.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(
            !cfg.tables.is_empty(),
            "TAGE needs at least one tagged table"
        );
        assert!(
            cfg.tables.windows(2).all(|w| w[0].hist_len < w[1].hist_len),
            "history lengths must be strictly increasing"
        );
        assert!(
            cfg.tables.iter().all(|t| (1..=15).contains(&t.tag_bits)),
            "tag widths must be in 1..=15"
        );
        let max_hist = cfg.tables.last().expect("non-empty").hist_len as usize;
        let idx_fold = cfg
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.hist_len as usize, t.log_size))
            .collect();
        let tag_fold0 = cfg
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.hist_len as usize, t.tag_bits))
            .collect();
        let tag_fold1 = cfg
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.hist_len as usize, t.tag_bits - 1))
            .collect();
        Self {
            base: vec![I2::default(); 1 << cfg.base_log_size],
            tables: cfg
                .tables
                .iter()
                .map(|t| vec![Entry::default(); 1 << t.log_size])
                .collect(),
            ghist: HistoryRegister::new(max_hist),
            idx_fold,
            tag_fold0,
            tag_fold1,
            use_alt_on_new: SatCounter::new(0),
            rng: Xorshift64::new(cfg.seed),
            updates: 0,
            allocations: 0,
            alloc_failures: 0,
            scratch: Lookup::default(),
            blame: None,
            cfg,
        }
    }

    fn base_index(&self, ip: u64) -> usize {
        xor_fold(ip, self.cfg.base_log_size) as usize
    }

    fn compute_lookup(&mut self, ip: u64) {
        let base_pred = self.base[self.base_index(ip)].is_taken();
        let lk = &mut self.scratch;
        lk.slots.clear();
        lk.hits.clear();
        for (i, spec) in self.cfg.tables.iter().enumerate() {
            let idx = (xor_fold(
                ip ^ (ip >> (spec.log_size / 2 + i as u32 + 1)),
                spec.log_size,
            ) ^ self.idx_fold[i].value()) as usize;
            let tag_mask = (1u16 << spec.tag_bits) - 1;
            let tag = ((xor_fold(ip, spec.tag_bits)
                ^ self.tag_fold0[i].value()
                ^ (self.tag_fold1[i].value() << 1)) as u16)
                & tag_mask;
            lk.slots.push((idx, tag));
            if self.tables[i][idx].tag == tag {
                lk.hits.push(i);
            }
        }

        lk.provider = lk.hits.last().copied();
        lk.alt = if lk.hits.len() >= 2 {
            Some(lk.hits[lk.hits.len() - 2])
        } else {
            None
        };
        lk.alt_pred = match lk.alt {
            Some(j) => self.tables[j][lk.slots[j].0].ctr.is_taken(),
            None => base_pred,
        };
        match lk.provider {
            Some(i) => {
                let e = &self.tables[i][lk.slots[i].0];
                lk.provider_pred = e.ctr.is_taken();
                // "Newly allocated": weak counter and no recorded usefulness.
                lk.provider_is_new = e.ctr.is_weak() && e.useful.is_zero();
                lk.final_pred = if lk.provider_is_new && self.use_alt_on_new.is_taken() {
                    lk.alt_pred
                } else {
                    lk.provider_pred
                };
            }
            None => {
                lk.provider_pred = lk.alt_pred;
                lk.provider_is_new = false;
                lk.final_pred = lk.alt_pred;
            }
        }
    }

    /// Allocation on a misprediction: claim an entry with zero usefulness in
    /// a table with a longer history than the provider; if none is free,
    /// age the candidates instead (Seznec's policy).
    fn allocate(&mut self, ip: u64, taken: bool) {
        let start = self.scratch.provider.map_or(0, |p| p + 1);
        if start >= self.tables.len() {
            return;
        }
        // Randomize the starting candidate so allocations spread across
        // tables (the "needs to generate random numbers" part of §VII-A).
        let skip = if self.tables.len() - start > 1 && self.rng.one_in(2) {
            1
        } else {
            0
        };
        let mut allocated = false;
        for i in (start + skip)..self.tables.len() {
            let idx = self.scratch.slots[i].0;
            let e = &mut self.tables[i][idx];
            if e.useful.is_zero() {
                e.tag = self.scratch.slots[i].1;
                e.ctr = SatCounter::new(if taken { 0 } else { -1 });
                allocated = true;
                self.allocations += 1;
                break;
            }
        }
        if !allocated {
            self.alloc_failures += 1;
            for i in start..self.tables.len() {
                let idx = self.scratch.slots[i].0;
                self.tables[i][idx].useful -= 1;
            }
        }
        let _ = ip;
    }

    /// Storage budget in bits.
    pub fn storage_bits(&self) -> u64 {
        let base = 2u64 << self.cfg.base_log_size;
        let tagged: u64 = self
            .cfg
            .tables
            .iter()
            .map(|t| (t.tag_bits as u64 + 3 + 2) << t.log_size)
            .sum();
        base + tagged
    }
}

impl Predictor for Tage {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.compute_lookup(ip);
        self.scratch.final_pred
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        self.compute_lookup(ip);
        self.updates += 1;

        let (provider, alt) = (self.scratch.provider, self.scratch.alt);
        let provider_pred = self.scratch.provider_pred;
        let alt_pred = self.scratch.alt_pred;
        let final_pred = self.scratch.final_pred;

        if final_pred != taken {
            // Attribute the miss to the component that supplied the final
            // prediction: the base table when no tagged entry hit, the
            // alternative prediction when the use-alt-on-new chooser
            // overrode a newly allocated provider, the provider otherwise.
            let alt_overrode = self.scratch.provider_is_new && self.use_alt_on_new.is_taken();
            self.blame = Some(match provider {
                None => "base",
                Some(_) if alt_overrode && alt.is_some() => "alt",
                Some(_) if alt_overrode => "base",
                Some(_) => "provider",
            });
        }

        // Chooser between a newly allocated provider and its alternative.
        if let Some(i) = provider {
            if self.scratch.provider_is_new && provider_pred != alt_pred {
                self.use_alt_on_new.sum_or_sub(alt_pred == taken);
            }
            let idx = self.scratch.slots[i].0;
            // Update the alternative too while the provider is still new, so
            // the fallback stays trained (standard TAGE policy).
            if self.scratch.provider_is_new {
                match alt {
                    Some(j) => {
                        let jdx = self.scratch.slots[j].0;
                        self.tables[j][jdx].ctr.sum_or_sub(taken);
                    }
                    None => {
                        let b = self.base_index(ip);
                        self.base[b].sum_or_sub(taken);
                    }
                }
            }
            let e = &mut self.tables[i][idx];
            e.ctr.sum_or_sub(taken);
            if provider_pred != alt_pred {
                if provider_pred == taken {
                    e.useful += 1;
                } else {
                    e.useful -= 1;
                }
            }
        } else {
            let b = self.base_index(ip);
            self.base[b].sum_or_sub(taken);
        }

        if final_pred != taken {
            self.allocate(ip, taken);
        }

        // Graceful aging of usefulness counters.
        if self.updates.is_multiple_of(self.cfg.reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful.halve();
                }
            }
        }
    }

    fn track(&mut self, branch: &Branch) {
        let taken = branch.is_taken();
        for i in 0..self.idx_fold.len() {
            let evicted = self.ghist.bit(self.idx_fold[i].hist_len() - 1);
            self.idx_fold[i].update(taken, evicted);
            self.tag_fold0[i].update(taken, evicted);
            self.tag_fold1[i].update(taken, evicted);
        }
        self.ghist.push(taken);
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib TAGE",
            "base_log_size": self.cfg.base_log_size,
            "num_tagged_tables": self.cfg.tables.len(),
            "history_lengths": self.cfg.tables.iter().map(|t| t.hist_len).collect::<Vec<_>>(),
            "tag_bits": self.cfg.tables.iter().map(|t| t.tag_bits).collect::<Vec<_>>(),
            "log_sizes": self.cfg.tables.iter().map(|t| t.log_size).collect::<Vec<_>>(),
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({
            "allocations": self.allocations,
            "allocation_failures": self.alloc_failures,
            "use_alt_on_new": self.use_alt_on_new.value(),
        })
    }

    fn last_mispredict_blame(&self) -> Option<&'static str> {
        self.blame
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        let mut probes = vec![probe_counter_table("tage.base", &self.base)
            .with_extra("allocation_failures", self.alloc_failures)];
        for (i, (table, spec)) in self.tables.iter().zip(&self.cfg.tables).enumerate() {
            let mut probe = TableProbe::new(format!("tage.bank{i}"), table.len() as u64);
            let mut histogram = [0u64; 8];
            let mut useful_sum = 0u64;
            for e in table {
                histogram[(e.ctr.value() - SatCounter::<3>::MIN) as usize] += 1;
                // A default entry has tag 0, weak counter and zero useful
                // bits; anything else has been claimed by an allocation.
                let live = e.tag != 0 || !e.ctr.is_weak() || !e.useful.is_zero();
                probe.occupied += live as u64;
                probe.saturated += e.ctr.is_saturated() as u64;
                useful_sum += e.useful.value() as u64;
            }
            probe.counter_histogram = histogram
                .iter()
                .enumerate()
                .map(|(s, &n)| (format!("{}", SatCounter::<3>::MIN + s as i8), n))
                .collect();
            probe.useful_density = Some(
                useful_sum as f64 / (table.len() as u64 * USatCounter::<2>::MAX as u64) as f64,
            );
            probes.push(probe.with_extra("hist_len", spec.hist_len));
        }
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};
    use crate::{Bimodal, Gshare};

    #[test]
    fn config_validation() {
        let mut cfg = TageConfig::small();
        cfg.tables[1].hist_len = cfg.tables[0].hist_len;
        let res = std::panic::catch_unwind(|| Tage::new(cfg));
        assert!(res.is_err(), "non-increasing lengths must be rejected");
    }

    #[test]
    fn learns_bias() {
        let recs = biased(3000, 6);
        let (mis, total) = run(&mut Tage::new(TageConfig::small()), &recs);
        assert!((mis as f64) < 0.2 * total as f64, "mis = {mis}");
    }

    #[test]
    fn learns_long_period_loops() {
        let recs = loop_pattern(0x1000, 30, 200);
        let (mis, total) = run(&mut Tage::new(TageConfig::small()), &recs);
        assert!((mis as f64) < 0.05 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn beats_gshare_on_mixed_workload() {
        let mut recs = Vec::new();
        recs.extend(loop_pattern(0x1000, 17, 150));
        recs.extend(correlated_pair(2000, 5));
        recs.extend(loop_pattern(0x2000, 33, 100));
        recs.extend(biased(1500, 9));
        let (mis_tage, total) = run(&mut Tage::new(TageConfig::small()), &recs);
        let (mis_gshare, _) = run(&mut Gshare::new(12, 12), &recs);
        let (mis_bim, _) = run(&mut Bimodal::new(12), &recs);
        assert!(
            mis_tage < mis_gshare && mis_gshare < mis_bim,
            "expected TAGE {mis_tage} < GShare {mis_gshare} < Bimodal {mis_bim} (of {total})"
        );
    }

    #[test]
    fn allocations_happen_and_are_recorded() {
        let recs = correlated_pair(2000, 13);
        let mut p = Tage::new(TageConfig::small());
        run(&mut p, &recs);
        let stats = p.execution_statistics();
        assert!(stats["allocations"].as_u64().unwrap() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let recs = correlated_pair(2000, 77);
        let (a, _) = run(&mut Tage::new(TageConfig::small()), &recs);
        let (b, _) = run(&mut Tage::new(TageConfig::small()), &recs);
        assert_eq!(a, b, "same seed must reproduce results exactly (§VII-C)");
    }

    #[test]
    fn storage_accounting() {
        let p = Tage::new(TageConfig::small());
        // Base: 2*2^10; five tables of 2^8 entries of (8 tag + 3 ctr + 2 u).
        assert_eq!(p.storage_bits(), 2048 + 5 * 256 * 13);
    }

    #[test]
    fn default_64kb_is_about_64kb() {
        let p = Tage::new(TageConfig::default_64kb());
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((16.0..128.0).contains(&kb), "storage = {kb} kB");
    }

    #[test]
    fn probes_satisfy_invariants() {
        let recs = correlated_pair(3000, 41);
        let mut p = Tage::new(TageConfig::small());
        run(&mut p, &recs);
        let probes = p.table_probes();
        // Base table plus one probe per tagged bank.
        assert_eq!(probes.len(), 1 + p.cfg.tables.len());
        assert_eq!(probes[0].name, "tage.base");
        for probe in &probes {
            assert!(probe.occupied <= probe.entries, "{}", probe.name);
            assert!(probe.saturated <= probe.entries, "{}", probe.name);
            let hist_sum: u64 = probe.counter_histogram.iter().map(|(_, n)| n).sum();
            assert_eq!(
                hist_sum, probe.entries,
                "{} histogram partitions",
                probe.name
            );
            if let Some(d) = probe.useful_density {
                assert!((0.0..=1.0).contains(&d), "{} density {d}", probe.name);
            }
        }
        assert!(
            probes[1..].iter().any(|p| p.occupied > 0),
            "training allocated into at least one tagged bank"
        );
    }

    #[test]
    fn probes_stable_across_identical_runs() {
        let recs = correlated_pair(2000, 55);
        let mut a = Tage::new(TageConfig::small());
        let mut b = Tage::new(TageConfig::small());
        run(&mut a, &recs);
        run(&mut b, &recs);
        assert_eq!(a.table_probes(), b.table_probes());
    }
}
