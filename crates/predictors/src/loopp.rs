//! A loop predictor: learns exact trip counts of regular loops.
//!
//! §VI-C motivates the comparison simulator with "compar[ing] the
//! effectiveness of adding a new component, like a loop predictor, to our
//! design" — this is that component. It wraps any inner predictor and
//! overrides it for branches identified as fixed-trip-count loops.

use mbp_core::{json, Branch, Predictor, Value};
use mbp_utils::{xor_fold, USatCounter};

const CONF_SATURATED: u8 = USatCounter::<2>::MAX;

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned iterations per execution (taken count before the exit).
    trip_count: u16,
    /// Taken streak currently in flight.
    current_iter: u16,
    /// Confidence that `trip_count` is stable.
    confidence: USatCounter<2>,
    /// Entry age for replacement.
    age: USatCounter<4>,
}

/// A loop predictor wrapped around an inner predictor.
///
/// When the table holds a confident trip count for a branch, the loop
/// predictor answers (taken until the final iteration, then not-taken) and
/// the inner predictor's answer is ignored; otherwise the inner predictor
/// decides. The inner component is always trained and tracked, so it stays
/// warm for the branches the loop table cannot capture — an instance of the
/// paper's owning-component-decides composition rule (§IV-B).
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::{Gshare, LoopPredictor};
///
/// let p = LoopPredictor::new(Box::new(Gshare::new(15, 14)), 7);
/// assert_eq!(p.metadata()["name"].as_str(), Some("MBPlib Loop Predictor"));
/// ```
pub struct LoopPredictor {
    inner: Box<dyn Predictor>,
    table: Vec<LoopEntry>,
    log_size: u32,
    overrides: u64,
}

impl LoopPredictor {
    /// Wraps `inner` with a loop table of `2^log_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is not in `1..=20`.
    pub fn new(inner: Box<dyn Predictor>, log_size: u32) -> Self {
        assert!((1..=20).contains(&log_size), "log_size must be in 1..=20");
        Self {
            inner,
            table: vec![LoopEntry::default(); 1 << log_size],
            log_size,
            overrides: 0,
        }
    }

    fn slot(&self, ip: u64) -> (usize, u16) {
        let idx = xor_fold(ip, self.log_size) as usize;
        let tag = (xor_fold(ip, 14) as u16) | 1; // non-zero tag
        (idx, tag)
    }

    /// The loop table's own opinion, if it is confident about this branch.
    fn loop_prediction(&self, ip: u64) -> Option<bool> {
        let (idx, tag) = self.slot(ip);
        let e = &self.table[idx];
        if e.tag == tag && e.confidence.value() == CONF_SATURATED && e.trip_count > 0 {
            Some(e.current_iter + 1 < e.trip_count)
        } else {
            None
        }
    }
}

impl Predictor for LoopPredictor {
    fn predict(&mut self, ip: u64) -> bool {
        match self.loop_prediction(ip) {
            Some(p) => {
                self.overrides += 1;
                p
            }
            None => self.inner.predict(ip),
        }
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        let (idx, tag) = self.slot(ip);
        let e = &mut self.table[idx];
        if e.tag == tag {
            if taken {
                e.current_iter = e.current_iter.saturating_add(1);
                // A streak beyond the learned trip count refutes it.
                if e.confidence.value() == CONF_SATURATED && e.current_iter >= e.trip_count {
                    e.confidence.reset();
                }
            } else {
                let observed = e.current_iter + 1; // iterations incl. exit
                if observed == e.trip_count {
                    e.confidence += 1;
                } else {
                    e.trip_count = observed;
                    e.confidence.reset();
                }
                e.current_iter = 0;
            }
            e.age += 1;
        } else if !taken || e.age.is_zero() {
            // Allocate on a loop exit (the informative event) or over a
            // stale entry.
            *e = LoopEntry {
                tag,
                trip_count: 0,
                current_iter: if taken { 1 } else { 0 },
                confidence: USatCounter::new(0),
                age: USatCounter::new(1),
            };
        } else {
            e.age -= 1;
        }
        self.inner.train(branch);
    }

    fn track(&mut self, branch: &Branch) {
        self.inner.track(branch);
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib Loop Predictor",
            "log_table_size": self.log_size,
            "inner": self.inner.metadata(),
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({
            "loop_overrides": self.overrides,
            "inner": self.inner.execution_statistics(),
        })
    }
}

impl std::fmt::Debug for LoopPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopPredictor")
            .field("log_size", &self.log_size)
            .field("overrides", &self.overrides)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{loop_pattern, run};
    use crate::{Bimodal, NeverTaken};

    #[test]
    fn perfect_on_fixed_trip_loop_after_warmup() {
        // Period 9, repeated: after a few sightings the exit is predicted.
        let recs = loop_pattern(0x1000, 9, 300);
        let mut p = LoopPredictor::new(Box::new(Bimodal::new(12)), 8);
        let (mis, total) = run(&mut p, &recs);
        assert!((mis as f64) < 0.02 * total as f64, "mis = {mis} of {total}");
        assert!(p.overrides > 0, "loop table never engaged");
    }

    #[test]
    fn beats_bare_bimodal_on_loops() {
        let recs = loop_pattern(0x1000, 9, 300);
        let (mis_loop, _) = run(
            &mut LoopPredictor::new(Box::new(Bimodal::new(12)), 8),
            &recs,
        );
        let (mis_bim, _) = run(&mut Bimodal::new(12), &recs);
        assert!(mis_loop < mis_bim, "{mis_loop} !< {mis_bim}");
    }

    #[test]
    fn falls_back_to_inner_for_irregular_branches() {
        // An always-taken branch never exits: the loop table never gains
        // confidence, so the inner predictor must answer.
        use mbp_core::Opcode;
        let mut p = LoopPredictor::new(Box::new(NeverTaken), 8);
        let b = Branch::new(0x500, 0x100, Opcode::conditional_direct(), true);
        for _ in 0..100 {
            p.predict(b.ip());
            p.train(&b);
            p.track(&b);
        }
        assert_eq!(p.overrides, 0);
        assert!(!p.predict(0x500), "inner (never-taken) decides");
    }

    #[test]
    fn adapts_when_trip_count_changes() {
        let mut recs = loop_pattern(0x1000, 6, 100);
        recs.extend(loop_pattern(0x1000, 11, 100));
        let mut p = LoopPredictor::new(Box::new(Bimodal::new(12)), 8);
        let (mis, total) = run(&mut p, &recs);
        // Mispredictions cluster around the regime change only.
        assert!((mis as f64) < 0.10 * total as f64, "mis = {mis} of {total}");
    }
}
