//! GShare (McFarling, 1993): global history XOR-ed into the table index.
//!
//! This is the paper's running example (Listing 2): a table of `i2`
//! counters, a global history register, and `XorFold(ip ^ history, T)` as
//! the index.

use mbp_core::{
    json, probe_counter_table, Branch, BranchBatch, PredictionBits, Predictor, TableProbe, Value,
};
use mbp_utils::{xor_fold, HistoryRegister, I2};

/// GShare with `history_length` bits of global history and `2^log_size`
/// two-bit counters.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::Gshare;
///
/// // The paper's §VI-A sweep: fixed table, varying history length.
/// for h in 6..=30 {
///     let p = Gshare::new(h, 18);
///     assert_eq!(p.metadata()["history_length"].as_u64(), Some(h as u64));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<I2>,
    ghist: HistoryRegister,
    history_length: u32,
    log_size: u32,
    /// Index computed by the latest `predict`, reused by `train` when the
    /// simulator issues the usual predict → train pair on one branch.
    /// Invalidated by `track`, the only call that changes the history.
    cached_index: Option<(u64, usize)>,
}

impl Gshare {
    /// Creates a GShare predictor.
    ///
    /// # Panics
    ///
    /// Panics if `history_length` is 0 or over 64, or `log_size` is 0 or
    /// over 30.
    pub fn new(history_length: u32, log_size: u32) -> Self {
        assert!(
            (1..=64).contains(&history_length),
            "history_length must be in 1..=64"
        );
        assert!((1..=30).contains(&log_size), "log_size must be in 1..=30");
        Self {
            table: vec![I2::default(); 1 << log_size],
            ghist: HistoryRegister::new(history_length as usize),
            history_length,
            log_size,
            cached_index: None,
        }
    }

    fn hash(&self, ip: u64) -> usize {
        // Listing 2: XorFold(ip ^ ghist, T).
        xor_fold(ip ^ self.ghist.low_bits(), self.log_size) as usize
    }

    /// Storage budget in bits.
    pub fn storage_bits(&self) -> u64 {
        2 * self.table.len() as u64 + self.history_length as u64
    }
}

impl Predictor for Gshare {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        let idx = self.hash(ip);
        self.cached_index = Some((ip, idx));
        self.table[idx].is_taken()
    }

    fn train(&mut self, branch: &Branch) {
        let idx = match self.cached_index {
            Some((ip, idx)) if ip == branch.ip() => idx,
            _ => self.hash(branch.ip()),
        };
        self.table[idx].sum_or_sub(branch.is_taken());
    }

    fn track(&mut self, branch: &Branch) {
        self.ghist.push(branch.is_taken());
        self.cached_index = None;
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib GShare",
            "history_length": self.history_length,
            "log_table_size": self.log_size,
        })
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        vec![probe_counter_table("gshare", &self.table)
            .with_extra("history_length", self.history_length)]
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        // Each branch is predicted against the history *before* its own
        // `track`, so the batch carries everything needed to reconstruct
        // every index: simulate the (single-word) history register in a
        // local and fold `ip ^ history` on the spot. The serial history
        // dependency makes a separate vectorizable index pass a net loss
        // here (measured — the extra stores/loads cost more than the fold
        // saves), so the kernel is one fused pass whose win over the
        // per-branch interface comes from iterating raw columns instead of
        // reconstructing `Branch` values, keeping the history in a
        // register instead of round-tripping `HistoryRegister::push`, and
        // flushing predictions a word at a time. The predict → train pair
        // for one branch uses the same index, which is exactly what the
        // scalar path's `cached_index` guarantees.
        let (pcs, taken, ops) = (batch.pcs(), batch.taken(), batch.ops());
        let hmask = if self.history_length == 64 {
            u64::MAX
        } else {
            (1u64 << self.history_length) - 1
        };
        let mut h = self.ghist.low_bits();
        // Pin the table base in a register: indexing through `self.table`
        // inside the loop would reload the Vec pointer around every store
        // the compiler cannot disambiguate.
        let table: &mut [I2] = &mut self.table;
        let tmask = table.len() - 1;
        let width = self.log_size;
        let n = pcs.len();
        let (pcs, taken, ops) = (&pcs[..n], &taken[..n], &ops[..n]);
        let (mut acc, mut nbits) = (0u64, 0usize);
        for i in 0..n {
            let (pc, t, op) = (pcs[i], taken[i], ops[i]);
            let conditional = op & 0b1 != 0;
            if conditional {
                let slot = xor_fold(pc ^ h, width) as usize & tmask;
                acc |= (table[slot].is_taken() as u64) << nbits;
                nbits += 1;
                if nbits == 64 {
                    out.push_word(acc, 64);
                    (acc, nbits) = (0, 0);
                }
                table[slot].sum_or_sub(t != 0);
            }
            if conditional | !track_only_conditional {
                h = ((h << 1) | (t != 0) as u64) & hmask;
            }
        }
        out.push_word(acc, nbits);
        self.ghist.set_low_bits(h);
        // Mirror `track`'s invalidation: any cached pair is stale now.
        self.cached_index = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{correlated_pair, loop_pattern, run};
    use crate::Bimodal;

    #[test]
    fn learns_history_correlation() {
        // The second branch copies the first's outcome: with history, GShare
        // nails it; bimodal cannot (see bimodal tests).
        let recs = correlated_pair(4000, 3);
        let (mis, total) = run(&mut Gshare::new(8, 14), &recs);
        assert!((mis as f64) < 0.30 * total as f64, "mis = {mis} of {total}");
        // And specifically better than bimodal on the same stream.
        let (mis_bim, _) = run(&mut Bimodal::new(14), &recs);
        assert!(mis < mis_bim, "gshare {mis} !< bimodal {mis_bim}");
    }

    #[test]
    fn learns_loop_exits() {
        // With enough history to see a whole iteration, the exit becomes
        // predictable — the fundamental advantage over bimodal.
        let recs = loop_pattern(0x1000, 6, 400);
        let (mis, total) = run(&mut Gshare::new(12, 14), &recs);
        assert!((mis as f64) < 0.05 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn track_updates_history_for_unconditional_too() {
        use mbp_core::Opcode;
        let mut p = Gshare::new(4, 8);
        let uncond = Branch::new(0x10, 0x20, Opcode::unconditional_direct(), true);
        p.track(&uncond);
        assert_eq!(p.ghist.low_bits() & 1, 1);
    }

    #[test]
    fn prediction_is_pure() {
        // predict() must not perturb state (§IV-A contract).
        let recs = loop_pattern(0x1000, 5, 50);
        let mut p = Gshare::new(10, 12);
        for r in &recs {
            let first = p.predict(r.branch.ip());
            let second = p.predict(r.branch.ip());
            assert_eq!(first, second);
            p.train(&r.branch);
            p.track(&r.branch);
        }
    }

    #[test]
    fn storage_accounting() {
        let p = Gshare::new(25, 18);
        // 2^18 two-bit counters = 64 kB  (the paper's Listing 1 example).
        assert_eq!(p.storage_bits(), (2 << 18) + 25);
    }

    #[test]
    #[should_panic(expected = "history_length")]
    fn oversized_history_rejected() {
        Gshare::new(65, 10);
    }
}
