//! Static (stateless) predictors — the pedagogical baselines.

use mbp_core::{json, Branch, Predictor, Value};

/// Predicts every branch taken.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::AlwaysTaken;
///
/// assert!(AlwaysTaken.predict(0x1234));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn predict(&mut self, _ip: u64) -> bool {
        true
    }

    fn train(&mut self, _branch: &Branch) {}

    fn track(&mut self, _branch: &Branch) {}

    fn metadata(&self) -> Value {
        json!({"name": "MBPlib Always Taken"})
    }
}

/// Predicts every branch not taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverTaken;

impl Predictor for NeverTaken {
    fn predict(&mut self, _ip: u64) -> bool {
        false
    }

    fn train(&mut self, _branch: &Branch) {}

    fn track(&mut self, _branch: &Branch) {}

    fn metadata(&self) -> Value {
        json!({"name": "MBPlib Never Taken"})
    }
}

/// Backward-taken / forward-not-taken: predicts taken for branches whose
/// target lies below the branch (loop back-edges).
///
/// Needs the target, which `predict(ip)` does not receive, so it learns the
/// target direction of each static branch on `train` — the classic BTFN
/// approximation for trace-driven evaluation.
#[derive(Clone, Debug, Default)]
pub struct Btfn {
    backward: std::collections::HashMap<u64, bool, mbp_utils::FastHashBuilder>,
}

impl Predictor for Btfn {
    fn predict(&mut self, ip: u64) -> bool {
        // Unknown branches default to not-taken (forward assumption).
        *self.backward.get(&ip).unwrap_or(&false)
    }

    fn train(&mut self, branch: &Branch) {
        if branch.is_taken() && branch.target() != 0 {
            self.backward
                .insert(branch.ip(), branch.target() < branch.ip());
        }
    }

    fn track(&mut self, _branch: &Branch) {}

    fn metadata(&self) -> Value {
        json!({"name": "MBPlib BTFN"})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{loop_pattern, run};
    use mbp_core::Opcode;

    #[test]
    fn always_taken_on_loop() {
        // A loop of period 8: 7 taken + 1 exit per iteration.
        let recs = loop_pattern(0x1000, 8, 100);
        let (mis, total) = run(&mut AlwaysTaken, &recs);
        assert_eq!(total, 800);
        assert_eq!(mis, 100, "one misprediction per loop exit");
    }

    #[test]
    fn never_taken_is_complement() {
        let recs = loop_pattern(0x1000, 8, 100);
        let (mis, _) = run(&mut NeverTaken, &recs);
        assert_eq!(mis, 700);
    }

    #[test]
    fn btfn_learns_backward_loops() {
        // Loop back-edge: target below ip → predicted taken after first sight.
        let recs = loop_pattern(0x1000, 8, 100);
        let (mis, _) = run(&mut Btfn::default(), &recs);
        // First iteration mispredicts the unknown branch once, then behaves
        // like always-taken.
        assert!(mis <= 101, "mis = {mis}");
    }

    #[test]
    fn btfn_predicts_forward_not_taken() {
        let mut p = Btfn::default();
        let fwd = Branch::new(0x100, 0x200, Opcode::conditional_direct(), true);
        p.train(&fwd);
        assert!(!p.predict(0x100), "forward branch → not taken");
    }
}
