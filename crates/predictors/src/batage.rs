//! BATAGE (Michaud, 2018): "an alternative TAGE-like conditional branch
//! predictor" — the state-of-the-art example the paper benchmarks as its
//! slowest, most complex predictor (§VII-A).
//!
//! BATAGE replaces TAGE's up/down counter + usefulness bit with a *dual
//! counter* `(n_taken, n_not_taken)` per entry, from which it derives a
//! Bayesian confidence estimate; a Controlled Allocation Throttling (CAT)
//! counter replaces the periodic usefulness reset. This implementation
//! follows those two mechanisms; minor details (meta-predictor skipping,
//! bank interleaving) are simplified.

use mbp_core::{json, probe_counter_table, Branch, Predictor, TableProbe, Value};
use mbp_utils::{xor_fold, FoldedHistory, HistoryRegister, Xorshift64, I2};

const COUNT_MAX: u8 = 7;

/// Confidence classes derived from a dual counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Confidence {
    Low,
    Medium,
    High,
}

/// A dual counter: how often the branch went each way since allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Dual {
    taken: u8,
    not_taken: u8,
}

impl Dual {
    fn fresh(taken: bool) -> Self {
        if taken {
            Dual {
                taken: 1,
                not_taken: 0,
            }
        } else {
            Dual {
                taken: 0,
                not_taken: 1,
            }
        }
    }

    fn prediction(self) -> bool {
        self.taken >= self.not_taken
    }

    /// Michaud's confidence estimate: the posterior probability that the
    /// minority direction wins, `(min + 1) / (n0 + n1 + 2)`. Classified as
    /// high (< 1/6), medium (< 1/3) or low; entries with almost no history
    /// are never trusted beyond low, so freshly allocated entries cannot
    /// override an established shorter-history opinion.
    fn confidence(self) -> Confidence {
        let min = self.taken.min(self.not_taken) as u32;
        let total = (self.taken + self.not_taken) as u32;
        // Compare (min+1)/(total+2) against 1/6 and 1/3 without floats.
        if total >= 5 && 6 * (min + 1) < total + 2 {
            Confidence::High
        } else if total >= 3 && 3 * (min + 1) < total + 2 {
            Confidence::Medium
        } else {
            Confidence::Low
        }
    }

    /// Posterior misprediction odds comparison: whether predicting from
    /// `self` is at least as reliable as predicting from `other`, i.e.
    /// `(min_s+1)/(total_s+2) <= (min_o+1)/(total_o+2)` cross-multiplied —
    /// the "dual counter comparison" at the heart of BATAGE's decision
    /// rule.
    fn at_least_as_confident_as(self, other: Dual) -> bool {
        let (ms, ts) = (
            self.taken.min(self.not_taken) as u32,
            (self.taken + self.not_taken) as u32,
        );
        let (mo, to) = (
            other.taken.min(other.not_taken) as u32,
            (other.taken + other.not_taken) as u32,
        );
        (ms + 1) * (to + 2) <= (mo + 1) * (ts + 2)
    }

    /// Dual-counter update: bump the observed side; once it saturates,
    /// halve the *other* side instead, so a consistently-behaving branch
    /// keeps (and keeps raising) its confidence while stale minority
    /// evidence decays — Michaud's update rule.
    fn update(&mut self, taken: bool) {
        let (side, other) = if taken {
            (&mut self.taken, &mut self.not_taken)
        } else {
            (&mut self.not_taken, &mut self.taken)
        };
        if *side < COUNT_MAX {
            *side += 1;
        } else {
            *other /= 2;
        }
    }

    /// Decay toward uselessness (applied to skipped allocation candidates).
    fn decay(&mut self) {
        if self.taken > self.not_taken {
            self.taken -= 1;
        } else if self.not_taken > self.taken {
            self.not_taken -= 1;
        } else if self.taken > 0 {
            self.taken -= 1;
            self.not_taken -= 1;
        }
    }

    /// An entry is reclaimable when its dual counter carries almost no
    /// information.
    fn is_useless(self) -> bool {
        self.taken + self.not_taken <= 1
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    tag: u16,
    dual: Dual,
}

/// Geometry shared with TAGE.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatageConfig {
    /// `2^base_log_size` bimodal base counters.
    pub base_log_size: u32,
    /// `(log_size, hist_len, tag_bits)` per tagged table, increasing
    /// history.
    pub tables: Vec<(u32, u32, u32)>,
    /// CAT counter ceiling (controls allocation throttling).
    pub cat_max: i32,
    /// Deterministic RNG seed.
    pub seed: u64,
}

impl BatageConfig {
    /// A ~64 kB configuration matching the TAGE default geometry.
    pub fn default_64kb() -> Self {
        let lengths = [4u32, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640];
        Self {
            base_log_size: 13,
            tables: lengths
                .iter()
                .enumerate()
                .map(|(i, &h)| (10u32, h, (8 + i as u32 / 3).min(12)))
                .collect(),
            cat_max: 16 * 1024,
            seed: 0x00ba_7a6e,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self {
            base_log_size: 10,
            tables: vec![(8, 4, 8), (8, 8, 8), (8, 16, 8), (8, 32, 8), (8, 64, 8)],
            cat_max: 2048,
            seed: 0xba7a,
        }
    }
}

/// The BATAGE predictor.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::{Batage, BatageConfig};
///
/// let p = Batage::new(BatageConfig::small());
/// assert_eq!(p.metadata()["name"].as_str(), Some("MBPlib BATAGE"));
/// ```
#[derive(Clone, Debug)]
pub struct Batage {
    cfg: BatageConfig,
    base: Vec<I2>,
    tables: Vec<Vec<Entry>>,
    ghist: HistoryRegister,
    idx_fold: Vec<FoldedHistory>,
    tag_fold0: Vec<FoldedHistory>,
    tag_fold1: Vec<FoldedHistory>,
    rng: Xorshift64,
    /// Controlled Allocation Throttling counter.
    cat: i32,
    allocations: u64,
    alloc_failures: u64,
    throttled: u64,
    // Lookup scratch shared by predict/train.
    slots: Vec<(usize, u16)>,
    hits: Vec<usize>,
    /// Attribution of the latest misprediction (forensics hook).
    blame: Option<&'static str>,
}

impl Batage {
    /// Builds a BATAGE predictor.
    ///
    /// # Panics
    ///
    /// Panics on an empty table list or non-increasing history lengths.
    pub fn new(cfg: BatageConfig) -> Self {
        assert!(!cfg.tables.is_empty(), "BATAGE needs at least one table");
        assert!(
            cfg.tables.windows(2).all(|w| w[0].1 < w[1].1),
            "history lengths must be strictly increasing"
        );
        let max_hist = cfg.tables.last().expect("non-empty").1 as usize;
        Self {
            base: vec![I2::default(); 1 << cfg.base_log_size],
            tables: cfg
                .tables
                .iter()
                .map(|&(log, _, _)| vec![Entry::default(); 1 << log])
                .collect(),
            ghist: HistoryRegister::new(max_hist),
            idx_fold: cfg
                .tables
                .iter()
                .map(|&(log, h, _)| FoldedHistory::new(h as usize, log))
                .collect(),
            tag_fold0: cfg
                .tables
                .iter()
                .map(|&(_, h, t)| FoldedHistory::new(h as usize, t))
                .collect(),
            tag_fold1: cfg
                .tables
                .iter()
                .map(|&(_, h, t)| FoldedHistory::new(h as usize, t.max(2) - 1))
                .collect(),
            rng: Xorshift64::new(cfg.seed),
            cat: 0,
            allocations: 0,
            alloc_failures: 0,
            throttled: 0,
            slots: Vec::new(),
            hits: Vec::new(),
            blame: None,
            cfg,
        }
    }

    fn base_index(&self, ip: u64) -> usize {
        xor_fold(ip, self.cfg.base_log_size) as usize
    }

    fn compute_lookup(&mut self, ip: u64) {
        self.slots.clear();
        self.hits.clear();
        for (i, &(log, _, tag_bits)) in self.cfg.tables.iter().enumerate() {
            let idx = (xor_fold(ip ^ (ip >> (log / 2 + i as u32 + 1)), log)
                ^ self.idx_fold[i].value()) as usize;
            let tag = ((xor_fold(ip, tag_bits)
                ^ self.tag_fold0[i].value()
                ^ (self.tag_fold1[i].value() << 1)) as u16)
                & ((1u16 << tag_bits) - 1);
            self.slots.push((idx, tag));
            if self.tables[i][idx].tag == tag {
                self.hits.push(i);
            }
        }
    }

    /// The base counter viewed as a dual counter, so it can enter the same
    /// Bayesian comparison as the tagged entries.
    fn base_as_dual(&self, ip: u64) -> Dual {
        let c = self.base[self.base_index(ip)];
        match (c.is_taken(), c.is_weak()) {
            (true, false) => Dual {
                taken: 5,
                not_taken: 0,
            },
            (true, true) => Dual {
                taken: 1,
                not_taken: 0,
            },
            (false, true) => Dual {
                taken: 0,
                not_taken: 1,
            },
            (false, false) => Dual {
                taken: 0,
                not_taken: 5,
            },
        }
    }

    /// BATAGE's decision rule: every matching entry (and the base counter)
    /// competes on its posterior reliability; ties go to the longer
    /// history. This is the paper's dual-counter comparison, not TAGE's
    /// longest-match-first rule.
    fn decide(&self, ip: u64) -> (Option<usize>, bool) {
        let mut best = self.base_as_dual(ip);
        let mut pred = best.prediction();
        let mut provider = None;
        for &i in self.hits.iter() {
            let d = self.tables[i][self.slots[i].0].dual;
            if d.at_least_as_confident_as(best) {
                best = d;
                pred = d.prediction();
                provider = Some(i);
            }
        }
        (provider, pred)
    }

    /// Storage budget in bits (9-ish bits of dual counter + tag per entry).
    pub fn storage_bits(&self) -> u64 {
        let base = 2u64 << self.cfg.base_log_size;
        let tagged: u64 = self
            .cfg
            .tables
            .iter()
            .map(|&(log, _, tag)| (tag as u64 + 6) << log)
            .sum();
        base + tagged
    }
}

impl Predictor for Batage {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.compute_lookup(ip);
        self.decide(ip).1
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        self.compute_lookup(ip);
        let (provider, final_pred) = self.decide(ip);

        if final_pred != taken {
            // The Bayesian comparison elected either a tagged entry or the
            // base counter as the most reliable — blame whichever one won.
            self.blame = Some(provider.map_or("base", |_| "provider"));
        }

        // Update the longest matching entry unconditionally — newly
        // allocated entries are low-confidence and would otherwise never be
        // selected, never train, and rot in place. Also update the entry
        // that actually provided the decision (when different), and keep
        // the base trained whenever the tagged prediction was uncertain.
        let longest = self.hits.last().copied();
        if let Some(i) = longest {
            let idx = self.slots[i].0;
            self.tables[i][idx].dual.update(taken);
        }
        match provider {
            Some(i) => {
                if longest != Some(i) {
                    let idx = self.slots[i].0;
                    self.tables[i][idx].dual.update(taken);
                }
                let idx = self.slots[i].0;
                if self.tables[i][idx].dual.confidence() == Confidence::Low {
                    let b = self.base_index(ip);
                    self.base[b].sum_or_sub(taken);
                }
            }
            None => {
                let b = self.base_index(ip);
                self.base[b].sum_or_sub(taken);
            }
        }

        // Allocation with Controlled Allocation Throttling: on a
        // misprediction, try to claim a useless entry in a longer table.
        // The CAT counter rises when allocations churn (allocating over
        // non-useless entries would destroy information) and directly
        // throttles the allocation probability.
        if final_pred != taken {
            let start = provider.map_or(0, |p| p + 1);
            let throttle = self.cat.max(0) as u64;
            // Allocate with probability (cat_max - cat) / cat_max.
            let allow = throttle == 0 || self.rng.below(self.cfg.cat_max as u64 + 1) >= throttle;
            if start < self.tables.len() && allow {
                let mut allocated = false;
                for i in start..self.tables.len() {
                    let idx = self.slots[i].0;
                    let e = &mut self.tables[i][idx];
                    if e.dual.is_useless() {
                        e.tag = self.slots[i].1;
                        e.dual = Dual::fresh(taken);
                        allocated = true;
                        self.allocations += 1;
                        // A successful clean allocation relaxes throttling.
                        self.cat = (self.cat - 1).max(0);
                        break;
                    }
                }
                if !allocated {
                    // Nothing reclaimable: decay one random candidate and
                    // tighten throttling.
                    self.alloc_failures += 1;
                    let i = start + self.rng.below((self.tables.len() - start) as u64) as usize;
                    let idx = self.slots[i].0;
                    self.tables[i][idx].dual.decay();
                    self.cat = (self.cat + 3).min(self.cfg.cat_max);
                }
            } else if start < self.tables.len() {
                self.throttled += 1;
            }
        }
    }

    fn track(&mut self, branch: &Branch) {
        let taken = branch.is_taken();
        for i in 0..self.idx_fold.len() {
            let evicted = self.ghist.bit(self.idx_fold[i].hist_len() - 1);
            self.idx_fold[i].update(taken, evicted);
            self.tag_fold0[i].update(taken, evicted);
            self.tag_fold1[i].update(taken, evicted);
        }
        self.ghist.push(taken);
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib BATAGE",
            "base_log_size": self.cfg.base_log_size,
            "num_tagged_tables": self.cfg.tables.len(),
            "history_lengths": self.cfg.tables.iter().map(|t| t.1).collect::<Vec<_>>(),
            "cat_max": self.cfg.cat_max,
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({
            "allocations": self.allocations,
            "allocation_failures": self.alloc_failures,
            "throttled_allocations": self.throttled,
            "cat": self.cat,
        })
    }

    fn last_mispredict_blame(&self) -> Option<&'static str> {
        self.blame
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        let mut probes = vec![probe_counter_table("batage.base", &self.base)
            .with_extra("allocation_failures", self.alloc_failures)
            .with_extra("throttled_allocations", self.throttled)
            .with_extra("cat", self.cat)];
        for (i, (table, spec)) in self.tables.iter().zip(&self.cfg.tables).enumerate() {
            let mut probe = TableProbe::new(format!("batage.bank{i}"), table.len() as u64);
            let mut buckets = [0u64; 3];
            let mut evidence_sum = 0u64;
            for e in table {
                probe.occupied += (!e.dual.is_useless()) as u64;
                probe.saturated +=
                    (e.dual.taken == COUNT_MAX || e.dual.not_taken == COUNT_MAX) as u64;
                buckets[match e.dual.confidence() {
                    Confidence::Low => 0,
                    Confidence::Medium => 1,
                    Confidence::High => 2,
                }] += 1;
                evidence_sum += (e.dual.taken + e.dual.not_taken) as u64;
            }
            probe.counter_histogram = vec![
                ("low".to_string(), buckets[0]),
                ("medium".to_string(), buckets[1]),
                ("high".to_string(), buckets[2]),
            ];
            // Normalized evidence held per entry — the BATAGE analogue of
            // TAGE's useful-bit density.
            probe.useful_density =
                Some(evidence_sum as f64 / (table.len() as u64 * 2 * COUNT_MAX as u64) as f64);
            probes.push(probe.with_extra("hist_len", spec.1));
        }
        probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};
    use crate::{Bimodal, Gshare};

    #[test]
    fn dual_counter_prediction_and_confidence() {
        let mut d = Dual::default();
        assert_eq!(d.confidence(), Confidence::Low);
        for _ in 0..6 {
            d.update(true);
        }
        assert!(d.prediction());
        assert_eq!(d.confidence(), Confidence::High);
        d.update(false);
        d.update(false);
        assert!(d.confidence() < Confidence::High);
    }

    #[test]
    fn dual_counter_saturation_preserves_ratio() {
        let mut d = Dual::default();
        for _ in 0..100 {
            d.update(true);
        }
        assert!(d.taken <= COUNT_MAX);
        assert!(d.prediction());
        assert_eq!(d.confidence(), Confidence::High);
    }

    #[test]
    fn dual_decay_reaches_useless() {
        let mut d = Dual {
            taken: 5,
            not_taken: 2,
        };
        for _ in 0..10 {
            d.decay();
        }
        assert!(d.is_useless());
    }

    #[test]
    fn learns_bias() {
        let recs = biased(3000, 14);
        let (mis, total) = run(&mut Batage::new(BatageConfig::small()), &recs);
        assert!((mis as f64) < 0.2 * total as f64, "mis = {mis}");
    }

    #[test]
    fn learns_long_loops() {
        let recs = loop_pattern(0x1000, 30, 200);
        let (mis, total) = run(&mut Batage::new(BatageConfig::small()), &recs);
        assert!((mis as f64) < 0.06 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn competitive_with_gshare_and_bimodal() {
        let mut recs = Vec::new();
        recs.extend(loop_pattern(0x1000, 17, 150));
        recs.extend(correlated_pair(2000, 5));
        recs.extend(loop_pattern(0x2000, 33, 100));
        recs.extend(biased(1500, 9));
        let (mis_ba, total) = run(&mut Batage::new(BatageConfig::small()), &recs);
        let (mis_gs, _) = run(&mut Gshare::new(12, 12), &recs);
        let (mis_bi, _) = run(&mut Bimodal::new(12), &recs);
        assert!(
            mis_ba < mis_gs && mis_gs < mis_bi,
            "expected BATAGE {mis_ba} < GShare {mis_gs} < Bimodal {mis_bi} (of {total})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let recs = correlated_pair(2000, 99);
        let (a, _) = run(&mut Batage::new(BatageConfig::small()), &recs);
        let (b, _) = run(&mut Batage::new(BatageConfig::small()), &recs);
        assert_eq!(a, b);
    }

    #[test]
    fn cat_stays_bounded() {
        let recs = correlated_pair(5000, 31);
        let mut p = Batage::new(BatageConfig::small());
        run(&mut p, &recs);
        assert!(p.cat >= 0 && p.cat <= p.cfg.cat_max);
    }

    #[test]
    fn probes_satisfy_invariants() {
        let recs = correlated_pair(3000, 47);
        let mut p = Batage::new(BatageConfig::small());
        run(&mut p, &recs);
        let probes = p.table_probes();
        assert_eq!(probes.len(), 1 + p.cfg.tables.len());
        assert_eq!(probes[0].name, "batage.base");
        for probe in &probes {
            assert!(probe.occupied <= probe.entries, "{}", probe.name);
            assert!(probe.saturated <= probe.entries, "{}", probe.name);
            let hist_sum: u64 = probe.counter_histogram.iter().map(|(_, n)| n).sum();
            assert_eq!(
                hist_sum, probe.entries,
                "{} histogram partitions",
                probe.name
            );
            if let Some(d) = probe.useful_density {
                assert!((0.0..=1.0).contains(&d), "{} density {d}", probe.name);
            }
        }
        assert!(
            probes[1..].iter().any(|p| p.occupied > 0),
            "training allocated into at least one tagged bank"
        );
    }

    #[test]
    fn probes_stable_across_identical_runs() {
        let recs = correlated_pair(2000, 63);
        let mut a = Batage::new(BatageConfig::small());
        let mut b = Batage::new(BatageConfig::small());
        run(&mut a, &recs);
        run(&mut b, &recs);
        assert_eq!(a.table_probes(), b.table_probes());
    }
}
