//! Branch *target* predictors, pairing with the direction predictors in
//! the ChampSim evaluation (§VII-A of the paper): a set-associative BTB, a
//! GShare-like indirect target predictor, ITTAGE and a return address
//! stack.
//!
//! The paper accompanies GShare with "a 8K-entry BTB and a 4K-entry
//! GShare-like indirect target predictor, while for the BATAGE predictor,
//! we used a 64 kB ITTAGE target predictor".

use mbp_core::Branch;
use mbp_utils::{mix64, xor_fold, FoldedHistory, HistoryRegister, LruSet, USatCounter};

/// A predictor of branch *targets* (as opposed to directions).
///
/// `predict_target` returns `None` when the structure holds no target for
/// `ip`; callers treat that as a guaranteed misprediction.
pub trait TargetPredictor {
    /// Predicted target for the branch at `ip`, if any.
    fn predict_target(&mut self, ip: u64) -> Option<u64>;

    /// Trains on a resolved taken branch.
    fn update(&mut self, branch: &Branch);
}

/// A set-associative branch target buffer with LRU replacement.
///
/// # Examples
///
/// ```
/// use mbp_predictors::target::{Btb, TargetPredictor};
/// use mbp_core::{Branch, Opcode};
///
/// let mut btb = Btb::new(10, 8); // 2^10 sets x 8 ways = 8K entries
/// let b = Branch::new(0x40_1000, 0x40_2000, Opcode::unconditional_direct(), true);
/// assert_eq!(btb.predict_target(b.ip()), None);
/// btb.update(&b);
/// assert_eq!(btb.predict_target(b.ip()), Some(0x40_2000));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<LruSet<u64>>,
    set_bits: u32,
}

impl Btb {
    /// Creates a BTB with `2^set_bits` sets of `ways` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `set_bits` is not in `1..=24` or `ways` is zero.
    pub fn new(set_bits: u32, ways: usize) -> Self {
        assert!((1..=24).contains(&set_bits), "set_bits must be in 1..=24");
        Self {
            sets: vec![LruSet::new(ways); 1 << set_bits],
            set_bits,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.sets[0].ways()
    }

    fn set_of(&self, ip: u64) -> usize {
        xor_fold(ip, self.set_bits) as usize
    }

    /// Looks up the stored target for `ip`, refreshing its recency.
    pub fn predict_target(&mut self, ip: u64) -> Option<u64> {
        let set = self.set_of(ip);
        self.sets[set].get(ip).copied()
    }

    /// Records the target of a resolved taken branch.
    pub fn update(&mut self, branch: &Branch) {
        if branch.is_taken() && branch.target() != 0 {
            let set = self.set_of(branch.ip());
            self.sets[set].insert(branch.ip(), branch.target());
        }
    }
}

impl TargetPredictor for Btb {
    fn predict_target(&mut self, ip: u64) -> Option<u64> {
        Btb::predict_target(self, ip)
    }

    fn update(&mut self, branch: &Branch) {
        Btb::update(self, branch);
    }
}

/// A GShare-like indirect target predictor: a tagless target table indexed
/// by `XorFold(ip ^ path_history)`.
///
/// The path history records low target bits of recent indirect branches,
/// so the same `switch` dispatch site can map different call chains to
/// different table entries.
///
/// # Examples
///
/// ```
/// use mbp_predictors::target::{GshareIndirect, TargetPredictor};
/// use mbp_core::{Branch, Opcode};
///
/// let mut p = GshareIndirect::new(12, 8); // 4K entries, 8 history bits
/// let b = Branch::new(0x40_1000, 0x40_2000, Opcode::indirect_jump(), true);
/// assert_eq!(p.predict_target(b.ip()), None);
/// // Each update also advances the path history; once the history of a
/// // monomorphic site becomes periodic, the prediction is stable.
/// for _ in 0..8 {
///     p.update(&b);
/// }
/// assert_eq!(p.predict_target(b.ip()), Some(0x40_2000));
/// ```
#[derive(Clone, Debug)]
pub struct GshareIndirect {
    /// Stored targets; 0 marks an empty slot (no real branch targets 0).
    table: Vec<u64>,
    index_bits: u32,
    hist: HistoryRegister,
    hist_bits: u32,
}

impl GshareIndirect {
    /// Creates an indirect predictor with `2^index_bits` entries and
    /// `hist_bits` bits of path history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `1..=24` or `hist_bits` not in
    /// `1..=64`.
    pub fn new(index_bits: u32, hist_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        assert!((1..=64).contains(&hist_bits), "hist_bits must be in 1..=64");
        Self {
            table: vec![0; 1 << index_bits],
            index_bits,
            hist: HistoryRegister::new(hist_bits as usize),
            hist_bits,
        }
    }

    fn index(&self, ip: u64) -> usize {
        xor_fold(ip ^ self.hist.low_bits(), self.index_bits) as usize
    }
}

impl TargetPredictor for GshareIndirect {
    fn predict_target(&mut self, ip: u64) -> Option<u64> {
        match self.table[self.index(ip)] {
            0 => None,
            target => Some(target),
        }
    }

    fn update(&mut self, branch: &Branch) {
        if branch.is_taken() && branch.target() != 0 {
            let slot = self.index(branch.ip());
            self.table[slot] = branch.target();
            // Path history: fold a couple of target bits per branch, like
            // hardware path registers do.
            let step = mix64(branch.target());
            for i in 0..2u32.min(self.hist_bits) {
                self.hist.push((step >> i) & 1 == 1);
            }
        }
    }
}

/// One tagged ITTAGE table.
#[derive(Clone, Debug)]
pub struct IttageTableSpec {
    /// `2^log_size` entries.
    pub log_size: u32,
    /// Global history bits folded into the index.
    pub hist_len: u32,
    /// Tag width in bits (at most 15).
    pub tag_bits: u32,
}

/// ITTAGE configuration: a tagless base target table plus tagged tables
/// with geometrically increasing history lengths.
#[derive(Clone, Debug)]
pub struct IttageConfig {
    /// `2^base_log_size` base table entries.
    pub base_log_size: u32,
    /// Tagged tables ordered by strictly increasing history length.
    pub tables: Vec<IttageTableSpec>,
}

impl IttageConfig {
    /// The ~64 kB configuration of §VII-A: eight tagged tables with
    /// geometric history lengths from 4 to 320 bits.
    pub fn default_64kb() -> Self {
        let lengths = [4u32, 8, 13, 22, 39, 70, 160, 320];
        Self {
            base_log_size: 11,
            tables: lengths
                .iter()
                .enumerate()
                .map(|(i, &hist_len)| IttageTableSpec {
                    log_size: 9,
                    hist_len,
                    tag_bits: (9 + i as u32 / 2).min(13),
                })
                .collect(),
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> Self {
        let lengths = [4u32, 16, 64];
        Self {
            base_log_size: 8,
            tables: lengths
                .iter()
                .map(|&hist_len| IttageTableSpec {
                    log_size: 7,
                    hist_len,
                    tag_bits: 9,
                })
                .collect(),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct IttageEntry {
    tag: u16,
    target: u64,
    conf: USatCounter<2>,
}

/// The ITTAGE indirect target predictor (Seznec, 2011): TAGE's tagged
/// geometric-history structure storing *targets* instead of direction
/// counters.
///
/// Prediction comes from the matching table with the longest history; on a
/// target misprediction a longer-history entry is allocated.
///
/// # Examples
///
/// ```
/// use mbp_predictors::target::{Ittage, IttageConfig, TargetPredictor};
/// use mbp_core::{Branch, Opcode};
///
/// let mut p = Ittage::new(IttageConfig::small());
/// let b = Branch::new(0x40_1000, 0x40_2000, Opcode::indirect_jump(), true);
/// p.update(&b);
/// assert_eq!(p.predict_target(b.ip()), Some(0x40_2000));
/// ```
#[derive(Clone, Debug)]
pub struct Ittage {
    cfg: IttageConfig,
    base: Vec<u64>,
    tables: Vec<Vec<IttageEntry>>,
    ghist: HistoryRegister,
    idx_fold: Vec<FoldedHistory>,
    tag_fold: Vec<FoldedHistory>,
    max_hist: usize,
    /// `(table, index)` of the provider of the last prediction, if tagged.
    last_provider: Option<(usize, usize)>,
}

impl Ittage {
    /// Builds an ITTAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no tagged tables, history lengths
    /// are not strictly increasing, or a tag is wider than 15 bits.
    pub fn new(cfg: IttageConfig) -> Self {
        assert!(
            !cfg.tables.is_empty(),
            "ITTAGE needs at least one tagged table"
        );
        assert!(
            cfg.tables.windows(2).all(|w| w[0].hist_len < w[1].hist_len),
            "history lengths must be strictly increasing"
        );
        assert!(
            cfg.tables.iter().all(|t| (1..=15).contains(&t.tag_bits)),
            "tags must be 1..=15 bits"
        );
        let max_hist = cfg.tables.last().map(|t| t.hist_len).unwrap() as usize;
        let idx_fold = cfg
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.hist_len as usize, t.log_size))
            .collect();
        let tag_fold = cfg
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.hist_len as usize, t.tag_bits))
            .collect();
        Self {
            base: vec![0; 1 << cfg.base_log_size],
            tables: cfg
                .tables
                .iter()
                .map(|t| vec![IttageEntry::default(); 1 << t.log_size])
                .collect(),
            ghist: HistoryRegister::new(max_hist),
            idx_fold,
            tag_fold,
            max_hist,
            last_provider: None,
            cfg,
        }
    }

    fn slot(&self, table: usize, ip: u64) -> (usize, u16) {
        let spec = &self.cfg.tables[table];
        let index = xor_fold(ip ^ self.idx_fold[table].value(), spec.log_size) as usize;
        let tag = xor_fold(mix64(ip) ^ self.tag_fold[table].value(), spec.tag_bits) as u16;
        (index, tag)
    }

    fn push_history(&mut self, bit: bool) {
        let evicted = self.ghist.bit(self.max_hist - 1);
        for (f, spec) in self.idx_fold.iter_mut().zip(&self.cfg.tables) {
            f.update(bit, self.ghist.bit(spec.hist_len as usize - 1));
        }
        for (f, spec) in self.tag_fold.iter_mut().zip(&self.cfg.tables) {
            f.update(bit, self.ghist.bit(spec.hist_len as usize - 1));
        }
        let _ = evicted;
        self.ghist.push(bit);
    }
}

impl TargetPredictor for Ittage {
    fn predict_target(&mut self, ip: u64) -> Option<u64> {
        self.last_provider = None;
        for table in (0..self.tables.len()).rev() {
            let (index, tag) = self.slot(table, ip);
            let e = &self.tables[table][index];
            if e.target != 0 && e.tag == tag {
                self.last_provider = Some((table, index));
                return Some(e.target);
            }
        }
        match self.base[xor_fold(ip, self.cfg.base_log_size) as usize] {
            0 => None,
            target => Some(target),
        }
    }

    fn update(&mut self, branch: &Branch) {
        if !branch.is_taken() || branch.target() == 0 {
            return;
        }
        let ip = branch.ip();
        let target = branch.target();

        // Re-derive the provider for this ip (update may run without an
        // immediately preceding predict on the same branch).
        let provider = (0..self.tables.len()).rev().find_map(|t| {
            let (index, tag) = self.slot(t, ip);
            let e = &self.tables[t][index];
            (e.target != 0 && e.tag == tag).then_some((t, index))
        });

        let base_slot = xor_fold(ip, self.cfg.base_log_size) as usize;
        let correct = match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                let was_right = e.target == target;
                if was_right {
                    e.conf += 1;
                } else if e.conf.is_zero() {
                    e.target = target;
                } else {
                    e.conf -= 1;
                }
                was_right
            }
            None => {
                let was_right = self.base[base_slot] == target;
                self.base[base_slot] = target;
                was_right
            }
        };

        // On a miss, allocate in one longer-history table whose entry has
        // no confidence left.
        if !correct {
            let start = provider.map_or(0, |(t, _)| t + 1);
            for t in start..self.tables.len() {
                let (index, tag) = self.slot(t, ip);
                let e = &mut self.tables[t][index];
                if e.target == 0 || e.conf.is_zero() {
                    *e = IttageEntry {
                        tag,
                        target,
                        conf: USatCounter::new(0),
                    };
                    break;
                }
                e.conf -= 1;
            }
        }

        // Fold two target bits into the global history.
        let step = mix64(target);
        self.push_history(step & 1 == 1);
        self.push_history(step >> 1 & 1 == 1);
    }
}

/// A bounded return address stack.
///
/// Calls push their fall-through address (`ip + 4`, the convention used by
/// the trace generator and the ChampSim-format writer); returns pop. On
/// overflow the oldest entry is dropped, like a hardware circular RAS.
///
/// # Examples
///
/// ```
/// use mbp_predictors::target::ReturnAddressStack;
/// use mbp_core::{Branch, Opcode};
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.on_branch(&Branch::new(0x40_1000, 0x40_8000, Opcode::call(), true));
/// assert_eq!(ras.predict_return(), Some(0x40_1004));
/// ras.on_branch(&Branch::new(0x40_8040, 0x40_1004, Opcode::ret(), true));
/// assert_eq!(ras.predict_return(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a stack holding at most `depth` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be positive");
        Self {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// The predicted target of the next return, if the stack is non-empty.
    pub fn predict_return(&self) -> Option<u64> {
        self.stack.last().copied()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Observes a resolved branch: calls push, returns pop.
    pub fn on_branch(&mut self, branch: &Branch) {
        use mbp_core::BranchKind;
        if !branch.is_taken() {
            return;
        }
        match branch.opcode().kind() {
            BranchKind::Call => {
                if self.stack.len() == self.depth {
                    self.stack.remove(0);
                }
                self.stack.push(branch.ip().wrapping_add(4));
            }
            BranchKind::Ret => {
                self.stack.pop();
            }
            BranchKind::Jump => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_core::Opcode;

    fn taken(ip: u64, target: u64, opcode: Opcode) -> Branch {
        Branch::new(ip, target, opcode, true)
    }

    #[test]
    fn btb_learns_and_evicts_lru() {
        let mut btb = Btb::new(1, 2); // 2 sets x 2 ways
        let op = Opcode::unconditional_direct();
        // Three branches mapping to the same set (set index = xor_fold(ip, 1)).
        let ips: Vec<u64> = (0..32)
            .map(|i| i * 2)
            .filter(|&ip| xor_fold(ip, 1) == 0)
            .take(3)
            .collect();
        btb.update(&taken(ips[0], 0x100, op));
        btb.update(&taken(ips[1], 0x200, op));
        assert_eq!(btb.predict_target(ips[0]), Some(0x100));
        // ips[1] is now LRU; inserting ips[2] evicts it.
        btb.update(&taken(ips[2], 0x300, op));
        assert_eq!(btb.predict_target(ips[1]), None);
        assert_eq!(btb.predict_target(ips[2]), Some(0x300));
    }

    #[test]
    fn btb_capacity_matches_geometry() {
        assert_eq!(Btb::new(10, 8).capacity(), 8192);
        assert_eq!(Btb::new(12, 1).capacity(), 4096);
    }

    #[test]
    fn btb_ignores_not_taken() {
        let mut btb = Btb::new(4, 2);
        btb.update(&Branch::new(
            0x500,
            0x900,
            Opcode::conditional_direct(),
            false,
        ));
        assert_eq!(btb.predict_target(0x500), None);
    }

    #[test]
    fn gshare_indirect_distinguishes_by_history() {
        let mut p = GshareIndirect::new(10, 8);
        let site = 0x40_2000;
        let op = Opcode::indirect_jump();
        // Alternate two targets from the same site; after the path history
        // picks up the pattern, both contexts hold their own entry.
        for _ in 0..64 {
            p.update(&taken(site, 0xA000, op));
            p.update(&taken(site, 0xB000, op));
        }
        let predicted = p.predict_target(site);
        assert!(predicted == Some(0xA000) || predicted == Some(0xB000));
    }

    #[test]
    fn ittage_learns_monomorphic_site() {
        let mut p = Ittage::new(IttageConfig::small());
        let b = taken(0x40_1000, 0x40_2000, Opcode::indirect_jump());
        for _ in 0..4 {
            p.update(&b);
        }
        assert_eq!(p.predict_target(b.ip()), Some(0x40_2000));
    }

    #[test]
    fn ittage_switches_after_repeated_misses() {
        let mut p = Ittage::new(IttageConfig::small());
        let site = 0x40_1000;
        let op = Opcode::indirect_jump();
        for _ in 0..8 {
            p.update(&taken(site, 0xA000, op));
        }
        for _ in 0..32 {
            p.update(&taken(site, 0xB000, op));
        }
        assert_eq!(p.predict_target(site), Some(0xB000));
    }

    #[test]
    fn ittage_default_config_is_valid() {
        let p = Ittage::new(IttageConfig::default_64kb());
        assert_eq!(p.tables.len(), 8);
    }

    #[test]
    fn ras_pairs_calls_and_returns() {
        let mut ras = ReturnAddressStack::new(4);
        ras.on_branch(&taken(0x100, 0x800, Opcode::call()));
        ras.on_branch(&taken(0x200, 0x900, Opcode::call()));
        assert_eq!(ras.predict_return(), Some(0x204));
        ras.on_branch(&taken(0x940, 0x204, Opcode::ret()));
        assert_eq!(ras.predict_return(), Some(0x104));
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        for ip in [0x100u64, 0x200, 0x300] {
            ras.on_branch(&taken(ip, 0x800, Opcode::call()));
        }
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.predict_return(), Some(0x304));
    }
}
