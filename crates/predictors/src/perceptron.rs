//! The hashed perceptron (Tarjan & Skadron, 2005): sums small signed
//! weights selected by hashes of the branch address and geometric slices of
//! the global history.

use mbp_core::{json, Branch, Predictor, TableProbe, Value};
use mbp_utils::{mix64, xor_fold, FoldedHistory, HistoryRegister};

const WEIGHT_MAX: i8 = 63;
const WEIGHT_MIN: i8 = -64;

/// A hashed perceptron predictor.
///
/// One bias table indexed by address plus `history_lengths.len()` weight
/// tables, table *i* indexed by a hash of the address and the most recent
/// `history_lengths[i]` outcome bits. The prediction is the sign of the
/// summed weights. Training occurs on a misprediction or when the sum's
/// magnitude falls below an adaptively tuned threshold θ (the O-GEHL-style
/// dynamic threshold).
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::HashedPerceptron;
///
/// let p = HashedPerceptron::new(vec![4, 8, 16, 32], 12);
/// assert_eq!(p.metadata()["tables"].as_u64(), Some(5));
/// ```
#[derive(Clone, Debug)]
pub struct HashedPerceptron {
    /// `tables[t][index]` signed weights; table 0 is the bias table.
    tables: Vec<Vec<i8>>,
    history_lengths: Vec<u32>,
    folded: Vec<FoldedHistory>,
    ghist: HistoryRegister,
    log_size: u32,
    theta: i32,
    /// Dynamic-threshold training counter.
    tc: i32,
}

impl HashedPerceptron {
    /// Creates a hashed perceptron with the given history lengths (one
    /// weight table each, plus the bias table) and `2^log_size` weights per
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `history_lengths` is empty or unsorted, or `log_size` is
    /// not in `1..=28`.
    pub fn new(history_lengths: Vec<u32>, log_size: u32) -> Self {
        assert!(
            !history_lengths.is_empty(),
            "need at least one history length"
        );
        assert!(
            history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly increasing"
        );
        assert!((1..=28).contains(&log_size), "log_size must be in 1..=28");
        let max_hist = *history_lengths.last().expect("non-empty") as usize;
        let folded = history_lengths
            .iter()
            .map(|&len| FoldedHistory::new(len as usize, log_size.min(63)))
            .collect();
        Self {
            tables: vec![vec![0i8; 1 << log_size]; history_lengths.len() + 1],
            history_lengths,
            folded,
            ghist: HistoryRegister::new(max_hist),
            log_size,
            theta: 12,
            tc: 0,
        }
    }

    /// The ~64 kB configuration used by the benchmark harness: eight tables
    /// with geometric history lengths.
    pub fn default_config() -> Self {
        Self::new(vec![3, 6, 12, 24, 48, 96, 192], 13)
    }

    fn index(&self, t: usize, ip: u64) -> usize {
        if t == 0 {
            xor_fold(ip, self.log_size) as usize
        } else {
            let h = self.folded[t - 1].value();
            xor_fold(mix64(ip.wrapping_mul(2 * t as u64 + 1)) ^ h, self.log_size) as usize
        }
    }

    fn sum(&self, ip: u64) -> i32 {
        (0..self.tables.len())
            .map(|t| self.tables[t][self.index(t, ip)] as i32)
            .sum()
    }

    /// Current adaptive threshold θ.
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Storage cost in bits: 7-bit weights across every table plus the
    /// global history register.
    pub fn storage_bits(&self) -> u64 {
        let weights: u64 = self.tables.iter().map(|t| t.len() as u64).sum();
        weights * 7 + self.history_lengths.last().copied().unwrap_or(0) as u64
    }
}

impl Predictor for HashedPerceptron {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.sum(ip) >= 0
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        let sum = self.sum(ip);
        let prediction = sum >= 0;
        let mispredicted = prediction != taken;

        if mispredicted || sum.abs() <= self.theta {
            for t in 0..self.tables.len() {
                let idx = self.index(t, ip);
                let w = &mut self.tables[t][idx];
                if taken {
                    *w = (*w + 1).min(WEIGHT_MAX);
                } else {
                    *w = (*w - 1).max(WEIGHT_MIN);
                }
            }
        }

        // Dynamic threshold fitting (Seznec): raise θ when mispredicting,
        // lower it when updating on low-confidence correct predictions.
        if mispredicted {
            self.tc += 1;
            if self.tc >= 64 {
                self.tc = 0;
                self.theta += 1;
            }
        } else if sum.abs() <= self.theta {
            self.tc -= 1;
            if self.tc <= -64 {
                self.tc = 0;
                self.theta = (self.theta - 1).max(1);
            }
        }
    }

    fn track(&mut self, branch: &Branch) {
        let taken = branch.is_taken();
        for f in &mut self.folded {
            f.update(taken, self.ghist.bit(f.hist_len() - 1));
        }
        self.ghist.push(taken);
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib Hashed Perceptron",
            "tables": self.tables.len(),
            "log_table_size": self.log_size,
            "history_lengths": self.history_lengths.clone(),
            "weight_bits": 7,
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({"theta": self.theta})
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        // One aggregate probe over every weight in every table. The
        // histogram buckets weights by magnitude; the buckets partition the
        // weight range, so the counts sum to `entries`.
        let total: u64 = self.tables.iter().map(|t| t.len() as u64).sum();
        let mut occupied = 0u64;
        let mut saturated = 0u64;
        let mut buckets = [0u64; 5];
        for table in &self.tables {
            for &w in table {
                if w != 0 {
                    occupied += 1;
                }
                if w == WEIGHT_MAX || w == WEIGHT_MIN {
                    saturated += 1;
                }
                let mag = (w as i32).unsigned_abs();
                let bucket = match mag {
                    0 => 0,
                    1..=16 => 1,
                    17..=32 => 2,
                    33..=48 => 3,
                    _ => 4,
                };
                buckets[bucket] += 1;
            }
        }
        let mut probe = TableProbe::new("perceptron", total);
        probe.occupied = occupied;
        probe.saturated = saturated;
        probe.counter_histogram = vec![
            ("zero".to_string(), buckets[0]),
            ("|w| 1-16".to_string(), buckets[1]),
            ("|w| 17-32".to_string(), buckets[2]),
            ("|w| 33-48".to_string(), buckets[3]),
            ("|w| 49-64".to_string(), buckets[4]),
        ];
        vec![probe
            .with_extra("theta", self.theta)
            .with_extra("num_tables", self.tables.len() as u64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};
    use crate::{Bimodal, Gshare};

    fn small() -> HashedPerceptron {
        HashedPerceptron::new(vec![4, 8, 16, 32], 12)
    }

    #[test]
    fn learns_bias() {
        let recs = biased(3000, 2);
        let (mis, total) = run(&mut small(), &recs);
        assert!((mis as f64) < 0.2 * total as f64, "mis = {mis}");
    }

    #[test]
    fn learns_long_loops_beyond_gshare_reach() {
        // Period-24 loop: needs ≥24 bits of usable history. A small GShare
        // washes out; the perceptron's long-history tables handle it.
        let recs = loop_pattern(0x1000, 24, 300);
        let (mis_p, total) = run(&mut small(), &recs);
        let (mis_g, _) = run(&mut Gshare::new(10, 12), &recs);
        assert!(
            mis_p < mis_g,
            "perceptron {mis_p} !< gshare {mis_g} of {total}"
        );
        assert!((mis_p as f64) < 0.05 * total as f64, "mis = {mis_p}");
    }

    #[test]
    fn beats_bimodal_on_correlation() {
        let recs = correlated_pair(4000, 8);
        let (mis_p, _) = run(&mut small(), &recs);
        let (mis_b, _) = run(&mut Bimodal::new(12), &recs);
        assert!(mis_p < mis_b);
    }

    #[test]
    fn theta_adapts() {
        let mut p = small();
        let initial = p.theta();
        // Random outcomes force mispredictions, pushing θ upward.
        let recs = biased(20_000, 3)
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.branch = r.branch.with_outcome(mbp_utils::mix64(i as u64) & 1 == 0);
                r
            })
            .collect::<Vec<_>>();
        run(&mut p, &recs);
        assert!(p.theta() > initial, "theta did not adapt: {}", p.theta());
    }

    #[test]
    fn weights_stay_saturated_in_range() {
        let mut p = small();
        let recs = biased(10_000, 4);
        run(&mut p, &recs);
        for table in &p.tables {
            for &w in table {
                assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_history_lengths_rejected() {
        HashedPerceptron::new(vec![8, 4], 10);
    }

    #[test]
    fn probe_histogram_partitions_all_weights() {
        let mut p = small();
        run(&mut p, &biased(5000, 9));
        let probes = p.table_probes();
        assert_eq!(probes.len(), 1);
        let probe = &probes[0];
        let total_weights: u64 = p.tables.iter().map(|t| t.len() as u64).sum();
        assert_eq!(probe.entries, total_weights);
        let hist_sum: u64 = probe.counter_histogram.iter().map(|(_, n)| n).sum();
        assert_eq!(hist_sum, total_weights, "buckets partition the weights");
        assert!(probe.occupied > 0, "training moved some weights off zero");
        assert!(probe.occupied <= probe.entries);
        assert!(probe.saturated <= probe.occupied);
    }
}
