//! A bias filter in front of a predictor.
//!
//! §IV-B: "a filter may decide that it is not necessary to track some
//! branches." Most programs execute many branches that have gone the same
//! way every single time; feeding them to an expensive predictor wastes its
//! capacity and its history. The filter answers those branches itself and
//! only forwards branches that have shown both outcomes.

use std::collections::HashMap;

use mbp_utils::FastHashBuilder;

use mbp_core::{json, Branch, Predictor, Value};

/// Per-branch filter state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BiasState {
    /// Seen only taken outcomes (count stored).
    OnlyTaken(u32),
    /// Seen only not-taken outcomes.
    OnlyNotTaken(u32),
    /// Has gone both ways: owned by the inner predictor now.
    Mixed,
}

/// Filters strongly biased branches away from an inner predictor.
///
/// While a branch has only ever produced one outcome, the filter predicts
/// that outcome and does **not** train or track the inner predictor with
/// it. The first divergence hands the branch over to the inner predictor
/// permanently.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::{BiasFilter, Gshare};
///
/// let p = BiasFilter::new(Box::new(Gshare::new(15, 14)));
/// assert_eq!(p.metadata()["name"].as_str(), Some("MBPlib Bias Filter"));
/// ```
pub struct BiasFilter {
    inner: Box<dyn Predictor>,
    states: HashMap<u64, BiasState, FastHashBuilder>,
    filtered: u64,
}

impl BiasFilter {
    /// Wraps `inner` with the filter.
    pub fn new(inner: Box<dyn Predictor>) -> Self {
        Self {
            inner,
            states: HashMap::default(),
            filtered: 0,
        }
    }

    fn is_filtered(&self, ip: u64) -> bool {
        !matches!(self.states.get(&ip), Some(BiasState::Mixed))
    }
}

impl Predictor for BiasFilter {
    fn predict(&mut self, ip: u64) -> bool {
        match self.states.get(&ip) {
            Some(BiasState::OnlyTaken(_)) => true,
            Some(BiasState::OnlyNotTaken(_)) => false,
            Some(BiasState::Mixed) => self.inner.predict(ip),
            // Unseen branches: most branches are taken (loop back-edges).
            None => true,
        }
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        let state = self.states.entry(ip).or_insert(if taken {
            BiasState::OnlyTaken(0)
        } else {
            BiasState::OnlyNotTaken(0)
        });
        match state {
            BiasState::OnlyTaken(n) if taken => {
                *n += 1;
                self.filtered += 1;
            }
            BiasState::OnlyNotTaken(n) if !taken => {
                *n += 1;
                self.filtered += 1;
            }
            BiasState::Mixed => self.inner.train(branch),
            state => {
                // First divergence: hand over to the inner predictor.
                *state = BiasState::Mixed;
                self.inner.train(branch);
            }
        }
    }

    fn track(&mut self, branch: &Branch) {
        // Unconditional branches always reach the inner scenario; filtered
        // conditional branches are withheld (they carry no information — the
        // filter knows their outcome).
        if !branch.is_conditional() || !self.is_filtered(branch.ip()) {
            self.inner.track(branch);
        }
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib Bias Filter",
            "inner": self.inner.metadata(),
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({
            "filtered_updates": self.filtered,
            "tracked_branches": self.states.len(),
            "inner": self.inner.execution_statistics(),
        })
    }
}

impl std::fmt::Debug for BiasFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiasFilter")
            .field("tracked", &self.states.len())
            .field("filtered", &self.filtered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{correlated_pair, run};
    use mbp_core::Opcode;
    use std::cell::Cell;
    use std::rc::Rc;

    struct Spy {
        trains: Rc<Cell<u64>>,
        tracks: Rc<Cell<u64>>,
    }

    impl Predictor for Spy {
        fn predict(&mut self, _ip: u64) -> bool {
            true
        }
        fn train(&mut self, _b: &Branch) {
            self.trains.set(self.trains.get() + 1);
        }
        fn track(&mut self, _b: &Branch) {
            self.tracks.set(self.tracks.get() + 1);
        }
    }

    fn cond(ip: u64, taken: bool) -> Branch {
        Branch::new(ip, 0, Opcode::conditional_direct(), taken)
    }

    #[test]
    fn biased_branches_never_reach_inner() {
        let trains = Rc::new(Cell::new(0));
        let tracks = Rc::new(Cell::new(0));
        let mut f = BiasFilter::new(Box::new(Spy {
            trains: trains.clone(),
            tracks: tracks.clone(),
        }));
        for _ in 0..50 {
            let b = cond(0x100, true);
            f.predict(b.ip());
            f.train(&b);
            f.track(&b);
        }
        assert_eq!(trains.get(), 0);
        assert_eq!(tracks.get(), 0);
        assert_eq!(f.filtered, 50);
    }

    #[test]
    fn divergence_hands_branch_to_inner() {
        let trains = Rc::new(Cell::new(0));
        let tracks = Rc::new(Cell::new(0));
        let mut f = BiasFilter::new(Box::new(Spy {
            trains: trains.clone(),
            tracks: tracks.clone(),
        }));
        for _ in 0..10 {
            let b = cond(0x100, true);
            f.train(&b);
            f.track(&b);
        }
        let div = cond(0x100, false);
        f.train(&div);
        f.track(&div);
        assert_eq!(trains.get(), 1, "divergence trains the inner");
        assert_eq!(tracks.get(), 1);
        // From now on the inner owns this branch.
        let b = cond(0x100, true);
        f.train(&b);
        assert_eq!(trains.get(), 2);
    }

    #[test]
    fn unconditional_branches_always_tracked() {
        let trains = Rc::new(Cell::new(0));
        let tracks = Rc::new(Cell::new(0));
        let mut f = BiasFilter::new(Box::new(Spy {
            trains: trains.clone(),
            tracks: tracks.clone(),
        }));
        let b = Branch::new(0x200, 0x300, Opcode::unconditional_direct(), true);
        f.track(&b);
        assert_eq!(tracks.get(), 1);
    }

    #[test]
    fn filter_does_not_hurt_accuracy_much() {
        use crate::Gshare;
        let recs = correlated_pair(3000, 41);
        let (mis_plain, _) = run(&mut Gshare::new(10, 12), &recs);
        let (mis_filtered, total) = run(&mut BiasFilter::new(Box::new(Gshare::new(10, 12))), &recs);
        // Both branches here are mixed, so the filter defers quickly.
        assert!(
            (mis_filtered as i64 - mis_plain as i64).abs() < total as i64 / 10,
            "filtered {mis_filtered} vs plain {mis_plain}"
        );
    }
}
