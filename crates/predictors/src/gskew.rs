//! 2bc-gskew (Seznec & Michaud, 1999): a de-aliased hybrid of a bimodal
//! bank and two skewed global-history banks, with a meta chooser and a
//! partial update policy.

use mbp_core::{json, Branch, Predictor, Value};
use mbp_utils::{mix64, xor_fold, HistoryRegister, I2};

/// The 2bc-gskew predictor.
///
/// Four banks of two-bit counters: `BIM` (address-indexed), `G0` and `G1`
/// (address ⊕ history with *skewed* hash functions and different history
/// lengths) and `META`. The e-gskew prediction is the majority of
/// `BIM`/`G0`/`G1`; `META` arbitrates between `BIM` alone and the majority.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::TwoBcGskew;
///
/// let p = TwoBcGskew::new(16, 21);
/// assert_eq!(p.metadata()["history_length"].as_u64(), Some(16));
/// ```
#[derive(Clone, Debug)]
pub struct TwoBcGskew {
    bim: Vec<I2>,
    g0: Vec<I2>,
    g1: Vec<I2>,
    meta: Vec<I2>,
    ghist: HistoryRegister,
    hist_len: u32,
    log_size: u32,
}

impl TwoBcGskew {
    /// Creates a 2bc-gskew with `hist_len` bits of global history and four
    /// banks of `2^log_size` counters. `G0` uses half the history length.
    ///
    /// # Panics
    ///
    /// Panics if `hist_len` is not in `2..=64` or `log_size` not in `1..=30`.
    pub fn new(hist_len: u32, log_size: u32) -> Self {
        assert!((2..=64).contains(&hist_len), "hist_len must be in 2..=64");
        assert!((1..=30).contains(&log_size), "log_size must be in 1..=30");
        Self {
            bim: vec![I2::default(); 1 << log_size],
            g0: vec![I2::default(); 1 << log_size],
            g1: vec![I2::default(); 1 << log_size],
            meta: vec![I2::default(); 1 << log_size],
            ghist: HistoryRegister::new(hist_len as usize),
            hist_len,
            log_size,
        }
    }

    fn bim_index(&self, ip: u64) -> usize {
        xor_fold(ip, self.log_size) as usize
    }

    /// Skewed bank hash: a distinct strong mix per bank de-aliases the
    /// banks, the defining property of the gskew family.
    fn skew_index(&self, ip: u64, bank: u64, hist_bits: u32) -> usize {
        let h = self.ghist.low_n(hist_bits as usize);
        xor_fold(
            mix64(ip ^ h.rotate_left(bank as u32 * 7) ^ (bank << 61)),
            self.log_size,
        ) as usize
    }

    fn indices(&self, ip: u64) -> [usize; 4] {
        [
            self.bim_index(ip),
            self.skew_index(ip, 1, self.hist_len / 2),
            self.skew_index(ip, 2, self.hist_len),
            // META mixes the address with a short history slice.
            xor_fold(
                ip ^ (self.ghist.low_n((self.hist_len / 4).max(1) as usize) << 1),
                self.log_size,
            ) as usize,
        ]
    }

    /// `(bim, g0, g1, meta_uses_egskew, final)` predictions at `ip`.
    fn components(&self, ip: u64) -> (bool, bool, bool, bool, bool) {
        let [bi, g0i, g1i, mi] = self.indices(ip);
        let bim = self.bim[bi].is_taken();
        let g0 = self.g0[g0i].is_taken();
        let g1 = self.g1[g1i].is_taken();
        let egskew = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let use_egskew = self.meta[mi].is_taken();
        let final_pred = if use_egskew { egskew } else { bim };
        (bim, g0, g1, use_egskew, final_pred)
    }

    /// Storage budget in bits.
    pub fn storage_bits(&self) -> u64 {
        4 * 2 * (1u64 << self.log_size) + self.hist_len as u64
    }
}

impl Predictor for TwoBcGskew {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.components(ip).4
    }

    fn train(&mut self, branch: &Branch) {
        let ip = branch.ip();
        let taken = branch.is_taken();
        let (bim, g0, g1, use_egskew, final_pred) = self.components(ip);
        let egskew = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let [bi, g0i, g1i, mi] = self.indices(ip);

        // META: trained only when the two strategies disagree (partial
        // update), toward whichever was right.
        if bim != egskew {
            self.meta[mi].sum_or_sub(egskew == taken);
        }

        if final_pred == taken {
            // Correct: strengthen only the banks that participated in the
            // correct prediction, leaving disagreeing banks untouched so
            // they keep their information about other branches.
            if use_egskew {
                if bim == taken {
                    self.bim[bi].sum_or_sub(taken);
                }
                if g0 == taken {
                    self.g0[g0i].sum_or_sub(taken);
                }
                if g1 == taken {
                    self.g1[g1i].sum_or_sub(taken);
                }
            } else {
                self.bim[bi].sum_or_sub(taken);
            }
        } else {
            // Mispredicted: retrain all banks.
            self.bim[bi].sum_or_sub(taken);
            self.g0[g0i].sum_or_sub(taken);
            self.g1[g1i].sum_or_sub(taken);
        }
    }

    fn track(&mut self, branch: &Branch) {
        self.ghist.push(branch.is_taken());
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib 2bc-gskew",
            "history_length": self.hist_len,
            "log_bank_size": self.log_size,
            "banks": 4,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};
    use crate::Bimodal;

    #[test]
    fn beats_bimodal_on_correlation() {
        let recs = correlated_pair(4000, 5);
        let (mis_gskew, _) = run(&mut TwoBcGskew::new(12, 12), &recs);
        let (mis_bim, total) = run(&mut Bimodal::new(12), &recs);
        assert!(
            mis_gskew < mis_bim,
            "gskew {mis_gskew} !< bimodal {mis_bim} of {total}"
        );
    }

    #[test]
    fn handles_bias_like_bimodal() {
        let recs = biased(3000, 17);
        let (mis, total) = run(&mut TwoBcGskew::new(12, 12), &recs);
        assert!((mis as f64) < 0.20 * total as f64, "mis = {mis}");
    }

    #[test]
    fn learns_loops() {
        let recs = loop_pattern(0x2000, 6, 300);
        let (mis, total) = run(&mut TwoBcGskew::new(14, 12), &recs);
        assert!((mis as f64) < 0.08 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn skewed_indices_differ() {
        let p = TwoBcGskew::new(16, 12);
        // With high probability the three banks map an address differently.
        let [_, a, b, _] = p.indices(0x1234_5678);
        assert_ne!(a, b);
    }

    #[test]
    fn storage_accounting() {
        let p = TwoBcGskew::new(16, 10);
        assert_eq!(p.storage_bits(), 4 * 2 * 1024 + 16);
    }
}
