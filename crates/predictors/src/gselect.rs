//! GSelect (McFarling, 1993): concatenating — rather than XOR-ing —
//! address and history bits to index the counter table.
//!
//! The historical sibling of GShare from the same tech report: GShare's
//! XOR usually wins because it uses the whole index for both signals, but
//! GSelect is the cleaner teaching example of two-component indexing and a
//! common subcomponent in older hybrids.

use mbp_core::{
    json, probe_counter_table, Branch, BranchBatch, PredictionBits, Predictor, TableProbe, Value,
};
use mbp_utils::{xor_fold, xor_fold_columns, HistoryRegister, I2};

use crate::KERNEL_CHUNK;

/// GSelect with `history_bits` of global history concatenated with
/// `address_bits` of (folded) branch address.
///
/// Table size is `2^(history_bits + address_bits)`.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::GSelect;
///
/// let p = GSelect::new(6, 10);
/// assert_eq!(p.metadata()["log_table_size"].as_u64(), Some(16));
/// ```
#[derive(Clone, Debug)]
pub struct GSelect {
    table: Vec<I2>,
    ghist: HistoryRegister,
    history_bits: u32,
    address_bits: u32,
}

impl GSelect {
    /// Creates a GSelect predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= history_bits <= 24`, `1 <= address_bits <= 24`
    /// and their sum is at most 30.
    pub fn new(history_bits: u32, address_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history_bits must be in 1..=24"
        );
        assert!(
            (1..=24).contains(&address_bits),
            "address_bits must be in 1..=24"
        );
        assert!(
            history_bits + address_bits <= 30,
            "table capped at 2^30 entries"
        );
        Self {
            table: vec![I2::default(); 1usize << (history_bits + address_bits)],
            ghist: HistoryRegister::new(history_bits as usize),
            history_bits,
            address_bits,
        }
    }

    fn index(&self, ip: u64) -> usize {
        let addr = xor_fold(ip, self.address_bits);
        let hist = self.ghist.low_n(self.history_bits as usize);
        ((hist << self.address_bits) | addr) as usize
    }

    /// Storage budget in bits.
    pub fn storage_bits(&self) -> u64 {
        2 * self.table.len() as u64 + self.history_bits as u64
    }
}

impl Predictor for GSelect {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.table[self.index(ip)].is_taken()
    }

    fn train(&mut self, branch: &Branch) {
        let idx = self.index(branch.ip());
        self.table[idx].sum_or_sub(branch.is_taken());
    }

    fn track(&mut self, branch: &Branch) {
        self.ghist.push(branch.is_taken());
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib GSelect",
            "history_bits": self.history_bits,
            "address_bits": self.address_bits,
            "log_table_size": self.history_bits + self.address_bits,
        })
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        vec![probe_counter_table("gselect", &self.table)
            .with_extra("history_bits", self.history_bits)
            .with_extra("address_bits", self.address_bits)]
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        // The address half of the index is history-free, so it folds in one
        // vectorizable pass per chunk; the history half is a single-word
        // register (`history_bits <= 24`) simulated in a local and OR-ed in
        // during the scalar counter walk.
        let (pcs, taken, ops) = (batch.pcs(), batch.taken(), batch.ops());
        let hmask = (1u64 << self.history_bits) - 1;
        // The register is exactly `history_bits` long, so `low_bits` is
        // already the `low_n(history_bits)` value the scalar index uses.
        let mut h = self.ghist.low_bits();
        // Pin the table base so stores inside the loop cannot force the Vec
        // pointer to reload.
        let table: &mut [I2] = &mut self.table;
        let tmask = table.len() - 1;
        let shift = self.address_bits;
        let mut addr = [0u64; KERNEL_CHUNK];
        let (mut acc, mut nbits) = (0u64, 0usize);
        let mut start = 0;
        while start < batch.len() {
            let n = KERNEL_CHUNK.min(batch.len() - start);
            xor_fold_columns(&pcs[start..start + n], shift, &mut addr);
            let (taken, ops) = (&taken[start..start + n], &ops[start..start + n]);
            for i in 0..n {
                let conditional = ops[i] & 0b1 != 0;
                let t = taken[i] != 0;
                if conditional {
                    let slot = ((h << shift) | addr[i]) as usize & tmask;
                    acc |= (table[slot].is_taken() as u64) << nbits;
                    nbits += 1;
                    if nbits == 64 {
                        out.push_word(acc, 64);
                        (acc, nbits) = (0, 0);
                    }
                    table[slot].sum_or_sub(t);
                }
                if conditional | !track_only_conditional {
                    h = ((h << 1) | t as u64) & hmask;
                }
            }
            start += n;
        }
        out.push_word(acc, nbits);
        self.ghist.set_low_bits(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};
    use crate::{Bimodal, Gshare};

    #[test]
    fn learns_bias() {
        let recs = biased(3000, 31);
        let (mis, total) = run(&mut GSelect::new(6, 10), &recs);
        assert!((mis as f64) < 0.2 * total as f64, "mis = {mis}");
    }

    #[test]
    fn learns_short_correlation() {
        let recs = correlated_pair(4000, 32);
        let (mis_sel, _) = run(&mut GSelect::new(6, 10), &recs);
        let (mis_bim, total) = run(&mut Bimodal::new(16), &recs);
        assert!(
            mis_sel < mis_bim,
            "gselect {mis_sel} !< bimodal {mis_bim} of {total}"
        );
    }

    #[test]
    fn competitive_with_gshare_at_equal_budget() {
        // McFarling's result — GShare usually edges out GSelect — holds on
        // averages over benchmark suites; on a tiny synthetic stream either
        // can win, so assert they stay within 10% of each other at the
        // same 2^16 budget.
        let mut recs = loop_pattern(0x1000, 11, 200);
        recs.extend(correlated_pair(3000, 33));
        let (sel, _) = run(&mut GSelect::new(6, 10), &recs);
        let (sha, _) = run(&mut Gshare::new(16, 16), &recs);
        let hi = sel.max(sha) as f64;
        let lo = sel.min(sha) as f64;
        assert!(hi <= lo * 1.10, "gselect {sel} vs gshare {sha} diverge");
    }

    #[test]
    fn index_concatenates_fields() {
        let mut p = GSelect::new(2, 3);
        // All-taken history = 0b11.
        p.ghist.push(true);
        p.ghist.push(true);
        let idx = p.index(0);
        assert_eq!(idx, 0b11 << 3, "history occupies the top bits");
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_table_rejected() {
        GSelect::new(20, 20);
    }
}
