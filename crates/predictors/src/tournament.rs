//! The generalized tournament predictor (Evers/Yeh/Patt hybrid, §VI-D).
//!
//! A meta-predictor chooses between two arbitrary component predictors. The
//! implementation mirrors the paper's Listing 4, including the cached
//! prediction (so `train` can reuse the `predict` lookups of the same
//! branch) and the *partial update* policy: the chooser is only trained when
//! the components disagree, but is always tracked with the program branch.

use mbp_core::{json, Branch, Predictor, TableProbe, Value};

use crate::{Bimodal, Gshare};

/// A tournament of two predictors arbitrated by a third.
///
/// The meta-predictor's "outcome" is *which component to believe*: `false`
/// selects component 0, `true` selects component 1.
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::{Bimodal, Gshare, Tournament};
///
/// // The original tournament: bimodal vs GShare with a bimodal chooser.
/// let p = Tournament::new(
///     Box::new(Bimodal::new(12)),
///     Box::new(Bimodal::new(14)),
///     Box::new(Gshare::new(15, 14)),
/// );
/// assert_eq!(p.metadata()["name"].as_str(), Some("MBPlib Tournament"));
/// ```
pub struct Tournament {
    meta: Box<dyn Predictor + Send>,
    bp0: Box<dyn Predictor + Send>,
    bp1: Box<dyn Predictor + Send>,
    // Cached data (Listing 4): predict() fills these; train() reuses them.
    predicted_ip: u64,
    tracked: bool,
    provider: bool,
    prediction: [bool; 2],
    /// Attribution of the latest misprediction (forensics hook).
    blame: Option<&'static str>,
}

impl Tournament {
    /// Builds a tournament from any three predictors.
    pub fn new(
        meta: Box<dyn Predictor + Send>,
        bp0: Box<dyn Predictor + Send>,
        bp1: Box<dyn Predictor + Send>,
    ) -> Self {
        Self {
            meta,
            bp0,
            bp1,
            predicted_ip: u64::MAX,
            tracked: true,
            provider: false,
            prediction: [false; 2],
            blame: None,
        }
    }

    /// The classic configuration: bimodal + GShare with a bimodal chooser,
    /// all tables of `2^log_size` entries.
    pub fn classic(log_size: u32) -> Self {
        Self::new(
            Box::new(Bimodal::new(log_size)),
            Box::new(Bimodal::new(log_size)),
            Box::new(Gshare::new(log_size.min(32), log_size)),
        )
    }

    fn refresh(&mut self, ip: u64) {
        // Listing 4 line 18: reuse the cached lookups when predicting the
        // same ip again before the next track().
        if self.predicted_ip == ip && !self.tracked {
            return;
        }
        self.predicted_ip = ip;
        self.tracked = false;
        self.provider = self.meta.predict(ip);
        self.prediction = [self.bp0.predict(ip), self.bp1.predict(ip)];
    }
}

impl Predictor for Tournament {
    fn size_hint(&self) -> u64 {
        // A meta-predictor's footprint is its components'.
        self.meta.size_hint() + self.bp0.size_hint() + self.bp1.size_hint()
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.refresh(ip);
        self.prediction[self.provider as usize]
    }

    fn train(&mut self, branch: &Branch) {
        self.refresh(branch.ip());
        if self.prediction[self.provider as usize] != branch.is_taken() {
            // Either the chooser picked the wrong component (the other one
            // was right), or no choice could have helped.
            self.blame = Some(if self.prediction[0] != self.prediction[1] {
                "chooser_wrong"
            } else {
                "both_wrong"
            });
        }
        self.bp0.train(branch);
        self.bp1.train(branch);
        if self.prediction[0] != self.prediction[1] {
            // Partial update: train the chooser toward whichever component
            // was right, using a synthetic branch whose outcome is "component
            // 1 was correct" (Listing 4 lines 33–38).
            let meta_branch = branch.with_outcome(self.prediction[1] == branch.is_taken());
            self.meta.train(&meta_branch);
        }
    }

    fn track(&mut self, branch: &Branch) {
        self.meta.track(branch);
        self.bp0.track(branch);
        self.bp1.track(branch);
        self.tracked = true;
    }

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib Tournament",
            "metapredictor": self.meta.metadata(),
            "predictor_0": self.bp0.metadata(),
            "predictor_1": self.bp1.metadata(),
        })
    }

    fn execution_statistics(&self) -> Value {
        json!({
            "metapredictor": self.meta.execution_statistics(),
            "predictor_0": self.bp0.execution_statistics(),
            "predictor_1": self.bp1.execution_statistics(),
        })
    }

    fn last_mispredict_blame(&self) -> Option<&'static str> {
        self.blame
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        // Delegate to the components, prefixing each probe with its role so
        // e.g. a bimodal chooser reports as "meta.bimodal".
        let mut probes = Vec::new();
        probes.extend(
            self.meta
                .table_probes()
                .into_iter()
                .map(|p| p.prefixed("meta")),
        );
        probes.extend(
            self.bp0
                .table_probes()
                .into_iter()
                .map(|p| p.prefixed("bp0")),
        );
        probes.extend(
            self.bp1
                .table_probes()
                .into_iter()
                .map(|p| p.prefixed("bp1")),
        );
        probes
    }
}

impl std::fmt::Debug for Tournament {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tournament")
            .field("predicted_ip", &self.predicted_ip)
            .field("tracked", &self.tracked)
            .field("provider", &self.provider)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{correlated_pair, run};
    use crate::{AlwaysTaken, NeverTaken};
    use mbp_core::Opcode;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A component that counts train calls, to observe the partial-update
    /// policy from outside. (`Arc<AtomicU64>` rather than `Rc<Cell<_>>`
    /// because `Tournament` components must be `Send`.)
    struct Counting {
        direction: bool,
        trains: Arc<AtomicU64>,
        tracks: Arc<AtomicU64>,
    }

    impl Predictor for Counting {
        fn predict(&mut self, _ip: u64) -> bool {
            self.direction
        }
        fn train(&mut self, _b: &Branch) {
            self.trains.fetch_add(1, Ordering::Relaxed);
        }
        fn track(&mut self, _b: &Branch) {
            self.tracks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn cond(ip: u64, taken: bool) -> Branch {
        Branch::new(ip, 0, Opcode::conditional_direct(), taken)
    }

    #[test]
    fn meta_trained_only_on_disagreement() {
        let trains = Arc::new(AtomicU64::new(0));
        let tracks = Arc::new(AtomicU64::new(0));
        let meta = Counting {
            direction: false,
            trains: trains.clone(),
            tracks: tracks.clone(),
        };
        // Components always agree (both taken) → meta never trained.
        let mut t = Tournament::new(Box::new(meta), Box::new(AlwaysTaken), Box::new(AlwaysTaken));
        for i in 0..10 {
            let b = cond(0x100 + i, true);
            t.predict(b.ip());
            t.train(&b);
            t.track(&b);
        }
        assert_eq!(
            trains.load(Ordering::Relaxed),
            0,
            "agreeing components never train the meta"
        );
        assert_eq!(
            tracks.load(Ordering::Relaxed),
            10,
            "meta is tracked for every branch"
        );
    }

    #[test]
    fn meta_branch_encodes_which_component_was_right() {
        let trains = Arc::new(AtomicU64::new(0));
        let tracks = Arc::new(AtomicU64::new(0));
        let meta = Counting {
            direction: true, // always choose component 1
            trains: trains.clone(),
            tracks: tracks.clone(),
        };
        // bp0 = never taken, bp1 = always taken: they always disagree.
        let mut t = Tournament::new(Box::new(meta), Box::new(NeverTaken), Box::new(AlwaysTaken));
        let b = cond(0x100, true);
        assert!(t.predict(b.ip()), "chooser selects bp1 (taken)");
        t.train(&b);
        assert_eq!(
            trains.load(Ordering::Relaxed),
            1,
            "disagreement trains the meta"
        );
    }

    #[test]
    fn learns_to_pick_the_better_component() {
        // On history-correlated data GShare wins; the tournament should
        // migrate to it and beat its bimodal component.
        let recs = correlated_pair(4000, 21);
        let (mis_tour, total) = run(&mut Tournament::classic(12), &recs);
        let (mis_bim, _) = run(&mut Bimodal::new(12), &recs);
        assert!(
            mis_tour < mis_bim,
            "tournament {mis_tour} !< bimodal {mis_bim} (of {total})"
        );
    }

    #[test]
    fn cached_prediction_reused_within_one_branch() {
        // Calling predict twice then train must behave identically to once.
        let recs = correlated_pair(500, 4);
        let mut a = Tournament::classic(10);
        let mut b = Tournament::classic(10);
        let mut mis_a = 0;
        let mut mis_b = 0;
        for r in &recs {
            let br = r.branch;
            if a.predict(br.ip()) != br.is_taken() {
                mis_a += 1;
            }
            a.train(&br);
            a.track(&br);
            b.predict(br.ip());
            if b.predict(br.ip()) != br.is_taken() {
                mis_b += 1;
            }
            b.train(&br);
            b.track(&br);
        }
        assert_eq!(mis_a, mis_b);
    }

    #[test]
    fn blame_distinguishes_chooser_from_both_wrong() {
        fn meta(direction: bool) -> Counting {
            Counting {
                direction,
                trains: Arc::new(AtomicU64::new(0)),
                tracks: Arc::new(AtomicU64::new(0)),
            }
        }
        // Chooser picks bp1 (always taken); bp0 (never taken) was right.
        let mut t = Tournament::new(
            Box::new(meta(true)),
            Box::new(NeverTaken),
            Box::new(AlwaysTaken),
        );
        let b = cond(0x10, false);
        t.predict(b.ip());
        t.train(&b);
        assert_eq!(t.last_mispredict_blame(), Some("chooser_wrong"));
        t.track(&b);

        // Both components wrong: no choice could have helped.
        let mut t = Tournament::new(
            Box::new(meta(false)),
            Box::new(AlwaysTaken),
            Box::new(AlwaysTaken),
        );
        t.predict(b.ip());
        t.train(&b);
        assert_eq!(t.last_mispredict_blame(), Some("both_wrong"));
    }

    #[test]
    fn metadata_nests_components() {
        let t = Tournament::classic(10);
        let m = t.metadata();
        assert_eq!(m["predictor_0"]["name"].as_str(), Some("MBPlib Bimodal"));
        assert_eq!(m["predictor_1"]["name"].as_str(), Some("MBPlib GShare"));
        assert_eq!(m["metapredictor"]["name"].as_str(), Some("MBPlib Bimodal"));
    }
}
