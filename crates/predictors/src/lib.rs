//! The MBPlib *examples library* (§V, Table II of the paper): a uniform
//! collection of branch predictor implementations, from the pedagogical
//! (bimodal, GShare) through the historical (two-level, tournament,
//! 2bc-gskew) to the state of the art (hashed perceptron, TAGE, BATAGE).
//!
//! All predictors implement [`mbp_core::Predictor`] and are built from the
//! components of `mbp-utils`, so each implementation stays close to its
//! published description. Every predictor reports its configuration through
//! `metadata()`, which the simulator embeds in its JSON output — the paper's
//! workflow for keeping experiments self-describing.
//!
//! Beyond the conditional-direction predictors of Table II, the [`target`]
//! module provides the branch *target* predictors the paper pairs with them
//! in the ChampSim evaluation (§VII-A): a BTB, a GShare-like indirect target
//! predictor and ITTAGE.
//!
//! # Examples
//!
//! ```
//! use mbp_core::{simulate, SimConfig, SliceSource};
//! use mbp_predictors::Gshare;
//! use mbp_core::{Branch, BranchRecord, Opcode};
//!
//! // A loop branch: taken three times, then exits — GShare learns it.
//! let mut recs = Vec::new();
//! for _ in 0..500 {
//!     for i in 0..4 {
//!         recs.push(BranchRecord::new(
//!             Branch::new(0x40_1000, 0x40_0ff0, Opcode::conditional_direct(), i != 3),
//!             4,
//!         ));
//!     }
//! }
//! let mut gshare = Gshare::new(15, 17);
//! let r = simulate(&mut SliceSource::new(&recs), &mut gshare, &SimConfig::default())?;
//! assert!(r.metrics.accuracy > 0.95);
//! # Ok::<(), mbp_core::TraceError>(())
//! ```

mod batage;
mod bimodal;
mod filter;
mod gselect;
mod gshare;
mod gskew;
mod loopp;
mod perceptron;
mod statics;
mod tage;
pub mod target;
mod tournament;
mod twolevel;

pub use batage::{Batage, BatageConfig};
pub use bimodal::Bimodal;
pub use filter::BiasFilter;
pub use gselect::GSelect;
pub use gshare::Gshare;
pub use gskew::TwoBcGskew;
pub use loopp::LoopPredictor;
pub use perceptron::HashedPerceptron;
pub use statics::{AlwaysTaken, Btfn, NeverTaken};
pub use tage::{Tage, TageConfig, TageTableSpec};
pub use tournament::Tournament;
pub use twolevel::{HistoryScope, PatternScope, TwoLevel};

use mbp_core::Predictor;

/// Chunk size shared by the vectorized `predict_batch` kernels: long enough
/// to amortize the per-chunk setup, short enough that the index scratch
/// arrays (a few KiB of `u64`) stay on the stack and in L1.
pub(crate) const KERNEL_CHUNK: usize = 256;

/// Builds one of the stock predictors by name, at a roughly 64 kB storage
/// budget — handy for CLI harnesses and benchmarks.
///
/// Recognized names: `always-taken`, `never-taken`, `btfn`, `bimodal`,
/// `two-level`, `gshare`, `gselect`, `tournament`, `2bc-gskew`,
/// `hashed-perceptron`, `tage`, `batage`.
///
/// The box is `Send` so the result can be handed to
/// `mbp_core::simulate_many`'s worker pool.
pub fn by_name(name: &str) -> Option<Box<dyn Predictor + Send>> {
    Some(match name {
        "always-taken" => Box::new(AlwaysTaken),
        "never-taken" => Box::new(NeverTaken),
        "btfn" => Box::new(Btfn::default()),
        "bimodal" => Box::new(Bimodal::new(18)),
        "two-level" => Box::new(TwoLevel::gas(12, 10, 14)),
        "gshare" => Box::new(Gshare::new(25, 18)),
        "gselect" => Box::new(GSelect::new(8, 10)),
        "tournament" => Box::new(Tournament::classic(16)),
        "2bc-gskew" => Box::new(TwoBcGskew::new(16, 21)),
        "hashed-perceptron" => Box::new(HashedPerceptron::default_config()),
        "tage" => Box::new(Tage::new(TageConfig::default_64kb())),
        "batage" => Box::new(Batage::new(BatageConfig::default_64kb())),
        // Deliberately absent from `PREDICTOR_NAMES`: an intentionally
        // panicking predictor for exercising sweep fault isolation end to
        // end (the `mbpsim` exit-code tests request it by name).
        "faulty" => Box::new(Faulty::default()),
        // Likewise hidden: a predictor that wedges mid-simulation, for
        // exercising the sweep's deadline watchdog end to end.
        "stalled" => Box::new(Stalled::default()),
        _ => return None,
    })
}

/// An intentionally broken predictor used only to test fault isolation.
///
/// Behaves like [`AlwaysTaken`] for a handful of predictions, then panics —
/// mimicking a latent bug that only fires once a predictor has warmed up.
/// It is reachable through [`by_name`] as `"faulty"` but is *not* listed in
/// [`PREDICTOR_NAMES`], so rosters, `mbpsim list` output and default sweeps
/// never pick it up by accident.
#[derive(Clone, Copy, Debug)]
pub struct Faulty {
    remaining: u64,
}

impl Default for Faulty {
    fn default() -> Self {
        Self { remaining: 8 }
    }
}

impl Predictor for Faulty {
    fn predict(&mut self, _ip: u64) -> bool {
        if self.remaining == 0 {
            panic!("intentional fault: the 'faulty' test predictor always panics");
        }
        self.remaining -= 1;
        true
    }

    fn train(&mut self, _branch: &mbp_core::Branch) {}

    fn track(&mut self, _branch: &mbp_core::Branch) {}

    fn metadata(&self) -> mbp_core::Value {
        mbp_core::json!({"name": "Intentionally faulty test predictor"})
    }
}

/// An intentionally wedged predictor used only to test the sweep's deadline
/// watchdog.
///
/// Behaves like [`AlwaysTaken`] for a handful of predictions, then starts
/// sleeping on every call — mimicking a predictor whose lookup has
/// degenerated (or deadlocked) so badly the sweep would never finish.
/// Each sleep is short and the total is bounded, so a watchdog-abandoned
/// worker winds down on its own instead of haunting the process. Reachable
/// through [`by_name`] as `"stalled"` but *not* listed in
/// [`PREDICTOR_NAMES`], exactly like [`Faulty`].
#[derive(Clone, Copy, Debug)]
pub struct Stalled {
    healthy: u64,
    naps_left: u64,
}

impl Default for Stalled {
    fn default() -> Self {
        Self {
            healthy: 8,
            naps_left: 2_000, // ≤ 10 s of wedged time, then it gives up
        }
    }
}

impl Predictor for Stalled {
    fn predict(&mut self, _ip: u64) -> bool {
        if self.healthy > 0 {
            self.healthy -= 1;
        } else if self.naps_left > 0 {
            self.naps_left -= 1;
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        true
    }

    fn train(&mut self, _branch: &mbp_core::Branch) {}

    fn track(&mut self, _branch: &mbp_core::Branch) {}

    fn metadata(&self) -> mbp_core::Value {
        mbp_core::json!({"name": "Intentionally stalled test predictor"})
    }
}

/// Names accepted by [`by_name`], in Table II order.
pub const PREDICTOR_NAMES: [&str; 12] = [
    "always-taken",
    "never-taken",
    "btfn",
    "bimodal",
    "two-level",
    "gshare",
    "gselect",
    "tournament",
    "2bc-gskew",
    "hashed-perceptron",
    "tage",
    "batage",
];

#[cfg(test)]
pub(crate) mod testutil {
    use mbp_core::{Branch, BranchRecord, Opcode};
    use mbp_utils::Xorshift64;

    /// A loop of `period` iterations repeated `reps` times at `ip`.
    pub fn loop_pattern(ip: u64, period: u32, reps: u32) -> Vec<BranchRecord> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for i in 0..period {
                out.push(BranchRecord::new(
                    Branch::new(ip, ip - 64, Opcode::conditional_direct(), i + 1 != period),
                    3,
                ));
            }
        }
        out
    }

    /// A branch whose outcome equals the outcome of the previous branch
    /// (perfectly history-correlated, hopeless for bimodal).
    pub fn correlated_pair(n: u32, seed: u64) -> Vec<BranchRecord> {
        let mut rng = Xorshift64::new(seed);
        let mut out = Vec::new();
        for _ in 0..n {
            let first = rng.below(2) == 1;
            out.push(BranchRecord::new(
                Branch::new(0x100, 0x50, Opcode::conditional_direct(), first),
                2,
            ));
            out.push(BranchRecord::new(
                Branch::new(0x200, 0x80, Opcode::conditional_direct(), first),
                2,
            ));
        }
        out
    }

    /// A heavily biased branch (taken with probability ~7/8).
    pub fn biased(n: u32, seed: u64) -> Vec<BranchRecord> {
        let mut rng = Xorshift64::new(seed);
        (0..n)
            .map(|_| {
                BranchRecord::new(
                    Branch::new(0x300, 0x10, Opcode::conditional_direct(), rng.below(8) != 0),
                    4,
                )
            })
            .collect()
    }

    /// Runs a predictor over records and returns (mispredictions, total).
    pub fn run(predictor: &mut dyn mbp_core::Predictor, recs: &[BranchRecord]) -> (u64, u64) {
        let mut mis = 0;
        let mut total = 0;
        for r in recs {
            let b = r.branch;
            if b.is_conditional() {
                total += 1;
                if predictor.predict(b.ip()) != b.is_taken() {
                    mis += 1;
                }
                predictor.train(&b);
            }
            predictor.track(&b);
        }
        (mis, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_builds_every_listed_predictor() {
        for name in PREDICTOR_NAMES {
            let p = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            // Every stock predictor must describe itself.
            assert!(!p.metadata().is_null(), "{name} has no metadata");
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn table_predictors_report_storage_size_hints() {
        for name in [
            "bimodal",
            "two-level",
            "gshare",
            "gselect",
            "tournament",
            "2bc-gskew",
            "hashed-perceptron",
            "tage",
            "batage",
        ] {
            let p = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            let hint = p.size_hint();
            assert!(hint > 0, "{name} reports no size hint");
            assert!(hint < 1 << 30, "{name} hint of {hint} B is implausible");
        }
        // Static predictors hold no tables; a zero hint opts them out of
        // admission gating.
        assert_eq!(by_name("always-taken").unwrap().size_hint(), 0);
    }
}
