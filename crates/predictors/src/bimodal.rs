//! The bimodal predictor (Lee & Smith, 1983): a table of two-bit counters
//! indexed by the branch address.

use mbp_core::{
    json, probe_counter_table, Branch, BranchBatch, PredictionBits, Predictor, TableProbe, Value,
};
use mbp_utils::{xor_fold, xor_fold_columns, I2};

use crate::KERNEL_CHUNK;

/// A table of `2^log_size` two-bit saturating counters indexed by a fold of
/// the branch address.
///
/// The simplest dynamic predictor and the most common *subcomponent* of
/// bigger designs: TAGE's base table and the tournament's stable side are
/// bimodal (§III).
///
/// # Examples
///
/// ```
/// use mbp_core::Predictor;
/// use mbp_predictors::Bimodal;
/// use mbp_core::{Branch, Opcode};
///
/// let mut p = Bimodal::new(14);
/// let b = Branch::new(0x1000, 0, Opcode::conditional_direct(), false);
/// p.train(&b);
/// p.train(&b);
/// assert!(!p.predict(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<I2>,
    log_size: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log_size` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or above 30.
    pub fn new(log_size: u32) -> Self {
        assert!((1..=30).contains(&log_size), "log_size must be in 1..=30");
        Self {
            table: vec![I2::default(); 1 << log_size],
            log_size,
        }
    }

    fn index(&self, ip: u64) -> usize {
        xor_fold(ip, self.log_size) as usize
    }

    /// Storage budget in bits (2 bits per entry).
    pub fn storage_bits(&self) -> u64 {
        2 * self.table.len() as u64
    }
}

impl Predictor for Bimodal {
    fn size_hint(&self) -> u64 {
        self.storage_bits().div_ceil(8)
    }

    fn predict(&mut self, ip: u64) -> bool {
        self.table[self.index(ip)].is_taken()
    }

    fn train(&mut self, branch: &Branch) {
        let idx = self.index(branch.ip());
        self.table[idx].sum_or_sub(branch.is_taken());
    }

    fn track(&mut self, _branch: &Branch) {}

    fn metadata(&self) -> Value {
        json!({
            "name": "MBPlib Bimodal",
            "log_table_size": self.log_size,
            "counter_bits": 2,
        })
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        vec![probe_counter_table("bimodal", &self.table)]
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        _track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        // The index depends only on the address, so all indices of a chunk
        // hash in one vectorizable pass; the counter loop stays scalar but
        // touches the table through a power-of-two mask, which both matches
        // `xor_fold`'s range and lets the compiler drop the bounds checks.
        // Prediction bits accumulate in a register and flush a word at a
        // time. `track` is a no-op, so `track_only_conditional` is
        // irrelevant.
        let (pcs, taken, ops) = (batch.pcs(), batch.taken(), batch.ops());
        // Pin the table base so stores inside the loop cannot force the Vec
        // pointer to reload.
        let table: &mut [I2] = &mut self.table;
        let mask = table.len() - 1;
        let mut idx = [0u64; KERNEL_CHUNK];
        let (mut acc, mut nbits) = (0u64, 0usize);
        let mut start = 0;
        while start < batch.len() {
            let n = KERNEL_CHUNK.min(batch.len() - start);
            xor_fold_columns(&pcs[start..start + n], self.log_size, &mut idx);
            let (taken, ops) = (&taken[start..start + n], &ops[start..start + n]);
            for i in 0..n {
                if ops[i] & 0b1 != 0 {
                    let slot = idx[i] as usize & mask;
                    acc |= (table[slot].is_taken() as u64) << nbits;
                    nbits += 1;
                    if nbits == 64 {
                        out.push_word(acc, 64);
                        (acc, nbits) = (0, 0);
                    }
                    table[slot].sum_or_sub(taken[i] != 0);
                }
            }
            start += n;
        }
        out.push_word(acc, nbits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{biased, correlated_pair, loop_pattern, run};

    #[test]
    fn learns_bias_quickly() {
        let recs = biased(4000, 11);
        let (mis, total) = run(&mut Bimodal::new(14), &recs);
        // The branch is ~87.5% taken; bimodal should approach that bound.
        assert!(total == 4000);
        assert!((mis as f64) < 0.18 * total as f64, "mis = {mis}");
    }

    #[test]
    fn loop_costs_one_or_two_exits() {
        // Classic result: a 2-bit counter mispredicts a loop exit once (the
        // exit) without flipping to not-taken, so ~1 mispredict/iteration.
        let recs = loop_pattern(0x1000, 10, 200);
        let (mis, _) = run(&mut Bimodal::new(14), &recs);
        assert!(mis <= 210, "mis = {mis}");
        assert!(mis >= 190, "mis = {mis}");
    }

    #[test]
    fn cannot_learn_correlation() {
        // Outcome depends on the previous branch, not the address: bimodal
        // stays near 50% on the second branch.
        let recs = correlated_pair(4000, 3);
        let (mis, total) = run(&mut Bimodal::new(14), &recs);
        assert!(mis as f64 > 0.3 * total as f64, "mis = {mis} of {total}");
    }

    #[test]
    fn distinct_branches_do_not_interfere_much() {
        let mut recs = Vec::new();
        for i in 0..100u64 {
            recs.extend(biased(20, i).into_iter().map(|mut r| {
                r.branch = Branch::new(0x4000 + i * 8, 0, r.branch.opcode(), r.branch.is_taken());
                r
            }));
        }
        let (mis, total) = run(&mut Bimodal::new(16), &recs);
        assert!((mis as f64) < 0.25 * total as f64);
    }

    #[test]
    fn metadata_reports_size() {
        let p = Bimodal::new(18);
        assert_eq!(p.metadata()["log_table_size"], Value::from(18));
        assert_eq!(p.storage_bits(), 2 << 18);
    }

    #[test]
    #[should_panic(expected = "log_size")]
    fn zero_size_rejected() {
        Bimodal::new(0);
    }

    use mbp_core::Branch;
}
