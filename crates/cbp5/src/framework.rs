//! The framework loop: parse a BT9 trace and drive a [`CbpPredictor`].

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::time::Instant;

use mbp_compress::DecompressReader;
use mbp_trace::bt9;
use mbp_trace::TraceError;

use crate::interface::{CbpPredictor, OpType};

/// Summary statistics printed by the framework, in the spirit of the
/// original's end-of-run report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cbp5Result {
    /// Total instructions in the trace.
    pub instructions: u64,
    /// Dynamic conditional branches simulated.
    pub num_conditional_branches: u64,
    /// Dynamic branches of all kinds.
    pub num_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
    /// Mispredictions per kilo-instruction.
    pub mpki: f64,
    /// Correct predictions over conditional branches.
    pub accuracy: f64,
    /// Wall-clock simulation time in seconds (includes trace parsing, as in
    /// the original framework).
    pub simulation_time: f64,
}

impl Cbp5Result {
    /// Renders the result as a JSON document, so framework runs can be
    /// post-processed with the same tooling as MBPlib output.
    pub fn to_json(&self) -> mbp_core::Value {
        mbp_core::json!({
            "metadata": {
                "simulator": "CBP5-style framework",
                "num_instructions": self.instructions,
                "num_branches": self.num_branches,
                "num_conditional_branches": self.num_conditional_branches,
            },
            "metrics": {
                "mpki": self.mpki,
                "mispredictions": self.mispredictions,
                "accuracy": self.accuracy,
                "simulation_time": self.simulation_time,
            },
        })
    }
}

/// Runs the framework over BT9 `text`.
///
/// The node and edge tables are parsed up front; the edge *sequence* — the
/// bulk of a BT9 file — is lexed line by line inside the simulation loop,
/// and every dynamic branch goes through the edge and node tables, exactly
/// the indirection §VII-D blames for the slowdown relative to SBBT.
///
/// # Errors
///
/// Propagates BT9 parsing errors.
pub fn run_framework_text<P: CbpPredictor>(
    text: &str,
    predictor: &mut P,
) -> Result<Cbp5Result, TraceError> {
    let start = Instant::now();

    // Phase 1: parse the graph header (everything before the sequence).
    let (graph, sequence_text) = bt9::parse_graph(text)?;

    // The original framework's BT9 reader keeps nodes and edges in hashed
    // id-keyed containers (std::unordered_map); every dynamic branch pays
    // two hashed lookups — "the cache misses from accessing a big hashed
    // structure to read the branch metadata" that §VII-D contrasts with
    // SBBT's stream format. The baseline reproduces that design.
    let edges: std::collections::HashMap<u32, (u32, bool, u64, u32)> = graph
        .edges
        .iter()
        .enumerate()
        .map(|(id, &e)| (id as u32, e))
        .collect();
    let nodes: std::collections::HashMap<u32, (u64, crate::interface::OpType)> = graph
        .nodes
        .iter()
        .enumerate()
        .map(|(id, &(ip, op))| (id as u32, (ip, OpType::from_opcode(op))))
        .collect();

    // Phase 2: the simulation loop, lexing one edge id per line.
    let mut result = Cbp5Result::default();
    for line in sequence_text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "EOF" {
            break;
        }
        let edge: u32 = line.parse().map_err(|_| TraceError::Invalid {
            what: "bad sequence entry",
            position: 0,
        })?;
        let &(node, taken, target, gap) = edges.get(&edge).ok_or(TraceError::Invalid {
            what: "dangling edge",
            position: 0,
        })?;
        let &(pc, op) = nodes.get(&node).ok_or(TraceError::Invalid {
            what: "dangling node",
            position: 0,
        })?;

        result.instructions += gap as u64 + 1;
        result.num_branches += 1;
        if op.is_conditional() {
            result.num_conditional_branches += 1;
            let pred = predictor.get_prediction(pc);
            if pred != taken {
                result.mispredictions += 1;
            }
            predictor.update_predictor(pc, op, taken, pred, target);
        } else {
            predictor.track_other_inst(pc, op, taken, target);
        }
    }

    result.mpki = if result.instructions == 0 {
        0.0
    } else {
        result.mispredictions as f64 * 1000.0 / result.instructions as f64
    };
    result.accuracy = if result.num_conditional_branches == 0 {
        1.0
    } else {
        (result.num_conditional_branches - result.mispredictions) as f64
            / result.num_conditional_branches as f64
    };
    result.simulation_time = start.elapsed().as_secs_f64();
    Ok(result)
}

/// Runs the framework over a (possibly compressed) BT9 byte stream.
///
/// # Errors
///
/// I/O, decompression and BT9 parsing errors.
pub fn run_framework<P: CbpPredictor, R: Read>(
    source: R,
    predictor: &mut P,
) -> Result<Cbp5Result, TraceError> {
    let data = DecompressReader::new(source)?.into_bytes();
    let text = String::from_utf8(data).map_err(|_| TraceError::BadSignature { format: "BT9" })?;
    run_framework_text(&text, predictor)
}

/// Runs the framework over a trace file.
///
/// # Errors
///
/// Same as [`run_framework`].
pub fn run_framework_file<P: CbpPredictor>(
    path: impl AsRef<Path>,
    predictor: &mut P,
) -> Result<Cbp5Result, TraceError> {
    run_framework(File::open(path)?, predictor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McbpAdapter;
    use mbp_predictors::{Bimodal, Gshare};
    use mbp_trace::bt9::Bt9Writer;
    use mbp_trace::{Branch, BranchRecord, Opcode};

    fn bt9_text(records: &[BranchRecord]) -> String {
        let mut w = Bt9Writer::new();
        for r in records {
            w.write_record(r);
        }
        w.to_text()
    }

    fn sample_records(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(
                        0x1000 + (i as u64 % 7) * 16,
                        0x2000,
                        Opcode::conditional_direct(),
                        i % 3 != 0,
                    ),
                    4,
                )
            })
            .collect()
    }

    #[test]
    fn framework_counts_match_trace() {
        let recs = sample_records(300);
        let mut p = McbpAdapter::new(Bimodal::new(10));
        let r = run_framework_text(&bt9_text(&recs), &mut p).unwrap();
        assert_eq!(r.num_branches, 300);
        assert_eq!(r.num_conditional_branches, 300);
        assert_eq!(r.instructions, 300 * 5);
        assert!(r.mpki > 0.0);
        assert!(r.accuracy > 0.5);
    }

    #[test]
    fn results_identical_to_mbplib_simulator() {
        // §VII-C: "we checked that the simulation results of both
        // frameworks were identical."
        use mbp_core::{simulate, SimConfig, SliceSource};

        let recs = sample_records(2000);

        let mut framework_pred = McbpAdapter::new(Gshare::new(12, 12));
        let fw = run_framework_text(&bt9_text(&recs), &mut framework_pred).unwrap();

        let mut lib_pred = Gshare::new(12, 12);
        let lib = simulate(
            &mut SliceSource::new(&recs),
            &mut lib_pred,
            &SimConfig::default(),
        )
        .unwrap();

        assert_eq!(fw.mispredictions, lib.metrics.mispredictions);
        assert_eq!(
            fw.num_conditional_branches,
            lib.metadata.num_conditional_branches
        );
        assert_eq!(fw.instructions, lib.metadata.simulation_instr);
        assert_eq!(fw.mpki, lib.metrics.mpki);
    }

    #[test]
    fn unconditional_branches_are_tracked_not_predicted() {
        let recs = vec![
            BranchRecord::new(Branch::new(0x10, 0x20, Opcode::call(), true), 0),
            BranchRecord::new(
                Branch::new(0x30, 0x40, Opcode::conditional_direct(), true),
                0,
            ),
        ];
        let mut p = McbpAdapter::new(Bimodal::new(8));
        let r = run_framework_text(&bt9_text(&recs), &mut p).unwrap();
        assert_eq!(r.num_branches, 2);
        assert_eq!(r.num_conditional_branches, 1);
    }

    #[test]
    fn rejects_missing_sequence_section() {
        let mut p = McbpAdapter::new(Bimodal::new(8));
        assert!(run_framework_text("BT9_SPA_TRACE_FORMAT\n", &mut p).is_err());
    }

    #[test]
    fn runs_from_compressed_source() {
        let recs = sample_records(100);
        let text = bt9_text(&recs);
        let packed = mbp_compress::compress(text.as_bytes(), mbp_compress::Codec::Mgz, 6).unwrap();
        let mut p = McbpAdapter::new(Bimodal::new(8));
        let r = run_framework(&packed[..], &mut p).unwrap();
        assert_eq!(r.num_branches, 100);
    }
}
