//! The championship predictor interface and the adapter from MBPlib
//! predictors.

use mbp_core::Predictor;
use mbp_trace::{Branch, BranchKind, Opcode};

/// The CBP5 operation type passed to the update functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Conditional direct branch.
    CondDirect,
    /// Conditional indirect branch.
    CondIndirect,
    /// Unconditional direct jump.
    UncondDirect,
    /// Unconditional indirect jump.
    UncondIndirect,
    /// Call (direct or indirect).
    Call,
    /// Return.
    Ret,
}

impl OpType {
    /// Maps an SBBT/BT9 opcode onto the championship operation type.
    pub fn from_opcode(op: Opcode) -> Self {
        match (op.kind(), op.is_conditional(), op.is_indirect()) {
            (BranchKind::Call, _, _) => OpType::Call,
            (BranchKind::Ret, _, _) => OpType::Ret,
            (BranchKind::Jump, true, false) => OpType::CondDirect,
            (BranchKind::Jump, true, true) => OpType::CondIndirect,
            (BranchKind::Jump, false, false) => OpType::UncondDirect,
            (BranchKind::Jump, false, true) => OpType::UncondIndirect,
        }
    }

    /// Whether the operation is a conditional branch (goes through
    /// `GetPrediction`/`UpdatePredictor`).
    pub fn is_conditional(self) -> bool {
        matches!(self, OpType::CondDirect | OpType::CondIndirect)
    }
}

/// The CBP5 framework's predictor contract.
///
/// The framework calls [`get_prediction`](CbpPredictor::get_prediction) and
/// [`update_predictor`](CbpPredictor::update_predictor) for conditional
/// branches and [`track_other_inst`](CbpPredictor::track_other_inst) for
/// everything else. Note there is no train/track split: the paper's §VI-D
/// argues this is exactly what makes some meta-predictors impossible to
/// write against this interface without reimplementing components.
pub trait CbpPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn get_prediction(&mut self, pc: u64) -> bool;

    /// Updates the predictor after a conditional branch resolves.
    fn update_predictor(
        &mut self,
        pc: u64,
        op: OpType,
        resolve_dir: bool,
        pred_dir: bool,
        branch_target: u64,
    );

    /// Informs the predictor of a non-conditional branch.
    fn track_other_inst(&mut self, pc: u64, op: OpType, taken: bool, branch_target: u64);
}

/// Adapts any MBPlib [`Predictor`] to the championship interface, the same
/// way the paper ports its example implementations to the CBP5 framework
/// "with only small changes needed to comply with the different interfaces"
/// (§VII-A).
#[derive(Debug)]
pub struct McbpAdapter<P> {
    inner: P,
}

impl<P: Predictor> McbpAdapter<P> {
    /// Wraps an MBPlib predictor.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// Unwraps the predictor.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Borrows the wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn branch_of(pc: u64, op: OpType, taken: bool, target: u64) -> Branch {
        let opcode = match op {
            OpType::CondDirect => Opcode::new(true, false, BranchKind::Jump),
            OpType::CondIndirect => Opcode::new(true, true, BranchKind::Jump),
            OpType::UncondDirect => Opcode::new(false, false, BranchKind::Jump),
            OpType::UncondIndirect => Opcode::new(false, true, BranchKind::Jump),
            OpType::Call => Opcode::new(false, false, BranchKind::Call),
            OpType::Ret => Opcode::new(false, true, BranchKind::Ret),
        };
        Branch::new(pc, target, opcode, taken)
    }
}

impl<P: Predictor> CbpPredictor for McbpAdapter<P> {
    fn get_prediction(&mut self, pc: u64) -> bool {
        self.inner.predict(pc)
    }

    fn update_predictor(
        &mut self,
        pc: u64,
        op: OpType,
        resolve_dir: bool,
        _pred_dir: bool,
        branch_target: u64,
    ) {
        // The CBP5 interface folds train and track into one call; MBPlib's
        // simulator calls train before track (§IV-B), so the adapter does
        // the same to guarantee identical results (§VII-C).
        let b = Self::branch_of(pc, op, resolve_dir, branch_target);
        self.inner.train(&b);
        self.inner.track(&b);
    }

    fn track_other_inst(&mut self, pc: u64, op: OpType, taken: bool, branch_target: u64) {
        let b = Self::branch_of(pc, op, taken, branch_target);
        self.inner.track(&b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optype_mapping() {
        assert_eq!(
            OpType::from_opcode(Opcode::conditional_direct()),
            OpType::CondDirect
        );
        assert_eq!(OpType::from_opcode(Opcode::call()), OpType::Call);
        assert_eq!(OpType::from_opcode(Opcode::ret()), OpType::Ret);
        assert_eq!(
            OpType::from_opcode(Opcode::indirect_jump()),
            OpType::UncondIndirect
        );
        assert!(OpType::CondIndirect.is_conditional());
        assert!(!OpType::Call.is_conditional());
    }

    #[test]
    fn adapter_trains_before_tracking() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Order(Rc<RefCell<Vec<&'static str>>>);

        impl Predictor for Order {
            fn predict(&mut self, _ip: u64) -> bool {
                true
            }
            fn train(&mut self, _b: &Branch) {
                self.0.borrow_mut().push("train");
            }
            fn track(&mut self, _b: &Branch) {
                self.0.borrow_mut().push("track");
            }
        }

        let log = Rc::new(RefCell::new(Vec::new()));
        let mut a = McbpAdapter::new(Order(log.clone()));
        a.update_predictor(0x10, OpType::CondDirect, true, true, 0x20);
        a.track_other_inst(0x30, OpType::Call, true, 0x40);
        assert_eq!(*log.borrow(), ["train", "track", "track"]);
    }
}
