//! A CBP5-framework-style baseline simulator.
//!
//! This crate reproduces the *design* MBPlib is benchmarked against in
//! Table III: a **framework** (it owns `main`'s loop and calls user code,
//! §I), driving predictors through the championship interface
//! ([`CbpPredictor`]: `GetPrediction` / `UpdatePredictor` /
//! `TrackOtherInst`), and reading **plain-text BT9 traces** whose branch
//! metadata lives in a graph that must be consulted for every dynamic
//! branch. Those two costs — text parsing and graph indirection — are
//! exactly what the paper credits SBBT with removing (§VII-D), so this
//! baseline keeps them faithfully: the node/edge tables are parsed up
//! front, but the edge *sequence* is lexed line by line during simulation,
//! like the original streaming reader.
//!
//! # Examples
//!
//! ```
//! use cbp5_sim::{run_framework_text, McbpAdapter};
//! use mbp_predictors::Bimodal;
//! use mbp_trace::{Branch, BranchRecord, Opcode};
//!
//! // Build a tiny BT9 trace.
//! let mut w = mbp_trace::bt9::Bt9Writer::new();
//! for i in 0..10 {
//!     w.write_record(&BranchRecord::new(
//!         Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), i % 2 == 0),
//!         3,
//!     ));
//! }
//! let text = w.to_text();
//!
//! let mut predictor = McbpAdapter::new(Bimodal::new(10));
//! let result = run_framework_text(&text, &mut predictor)?;
//! assert_eq!(result.num_conditional_branches, 10);
//! # Ok::<(), mbp_trace::TraceError>(())
//! ```

mod framework;
mod interface;

pub use framework::{run_framework, run_framework_file, run_framework_text, Cbp5Result};
pub use interface::{CbpPredictor, McbpAdapter, OpType};
