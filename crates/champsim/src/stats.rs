//! Simulation statistics and the analytic pipeline-cost model of §II.

use mbp_core::{json, Value};

/// Results of a cycle-level run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChampsimStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Dynamic conditional branches.
    pub conditional_branches: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// Mispredictions per kilo-instruction.
    pub mpki: f64,
    /// Taken branches whose target was wrong or missing (BTB/indirect/RAS).
    pub target_mispredictions: u64,
    /// `(accesses, misses)` per cache level: L1I, L1D, L2, LLC.
    pub cache: [(u64, u64); 4],
    /// Wall-clock simulation seconds.
    pub simulation_time: f64,
}

impl ChampsimStats {
    /// JSON rendering in the spirit of MBPlib's output format.
    pub fn to_json(&self) -> Value {
        json!({
            "metadata": {
                "simulator": "champsim-lite",
            },
            "metrics": {
                "instructions": self.instructions,
                "cycles": self.cycles,
                "ipc": self.ipc,
                "mpki": self.mpki,
                "mispredictions": self.mispredictions,
                "target_mispredictions": self.target_mispredictions,
                "simulation_time": self.simulation_time,
            },
            "caches": {
                "l1i": json!({"accesses": self.cache[0].0, "misses": self.cache[0].1}),
                "l1d": json!({"accesses": self.cache[1].0, "misses": self.cache[1].1}),
                "l2": json!({"accesses": self.cache[2].0, "misses": self.cache[2].1}),
                "llc": json!({"accesses": self.cache[3].0, "misses": self.cache[3].1}),
            },
        })
    }
}

/// The analytic pipeline of the paper's §II motivation example.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineModel {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Pipeline stage (1-based) where branches are evaluated.
    pub branch_stage: u32,
}

/// The §II CPI model: `CPI = 1/width + mpki/1000 × (branch_stage - 1)`.
///
/// Reproduces the paper's arithmetic: a 1-wide machine resolving branches
/// in stage 5 at 5 MPKI has CPI 1.02; a 4-wide machine resolving in stage
/// 11 has CPI 0.30, and reducing MPKI by 1 gives a ~3.4 % speedup.
///
/// # Examples
///
/// ```
/// use champsim_lite::{cpi_model, PipelineModel};
///
/// let narrow = PipelineModel { fetch_width: 1, branch_stage: 5 };
/// assert!((cpi_model(narrow, 5.0) - 1.02).abs() < 1e-9);
/// let wide = PipelineModel { fetch_width: 4, branch_stage: 11 };
/// let speedup = cpi_model(wide, 5.0) / cpi_model(wide, 4.0);
/// assert!((speedup - 0.30 / 0.29).abs() < 1e-9);
/// ```
pub fn cpi_model(pipeline: PipelineModel, mpki: f64) -> f64 {
    1.0 / pipeline.fetch_width as f64 + mpki / 1000.0 * (pipeline.branch_stage as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2_numbers_reproduce() {
        let narrow = PipelineModel {
            fetch_width: 1,
            branch_stage: 5,
        };
        let wide = PipelineModel {
            fetch_width: 4,
            branch_stage: 11,
        };
        assert!((cpi_model(narrow, 5.0) - 1.02).abs() < 1e-12);
        assert!((cpi_model(narrow, 4.0) - 1.016).abs() < 1e-12);
        assert!((cpi_model(wide, 5.0) - 0.30).abs() < 1e-12);
        assert!((cpi_model(wide, 4.0) - 0.29).abs() < 1e-12);
        // Speedups quoted in the paper: ~0.4 % and ~3.4 %.
        let narrow_speedup = cpi_model(narrow, 5.0) / cpi_model(narrow, 4.0) - 1.0;
        let wide_speedup = cpi_model(wide, 5.0) / cpi_model(wide, 4.0) - 1.0;
        assert!((narrow_speedup - 0.003937).abs() < 1e-4);
        assert!((wide_speedup - 0.034482).abs() < 1e-4);
        assert!(wide_speedup > 8.0 * narrow_speedup);
    }

    #[test]
    fn stats_json_sections() {
        let s = ChampsimStats {
            instructions: 100,
            cycles: 50,
            ipc: 2.0,
            ..Default::default()
        };
        let v = s.to_json();
        assert_eq!(v["metrics"]["ipc"].as_f64(), Some(2.0));
        assert!(v["caches"]["l1d"]["accesses"].as_u64().is_some());
    }
}
