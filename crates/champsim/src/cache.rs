//! A set-associative cache model and the three-level hierarchy.

use mbp_utils::{LruSet, TreePlru};

/// 64-byte cache blocks.
const BLOCK_SHIFT: u32 = 6;

/// Replacement policy of a cache level.
///
/// Real hierarchies mix these: small L1s can afford true LRU, large outer
/// levels implement tree pseudo-LRU. The `ablation` bench quantifies the
/// miss-rate difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Binary-tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
}

/// Geometry and latency of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Display name.
    pub name: &'static str,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Creates a level configuration with true-LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(name: &'static str, sets: usize, ways: usize, latency: u64) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be positive");
        Self {
            name,
            sets,
            ways,
            latency,
            replacement: Replacement::Lru,
        }
    }

    /// Switches the level to the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if tree-PLRU is requested with a non-power-of-two or
    /// single-way associativity.
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        if replacement == Replacement::TreePlru {
            assert!(
                self.ways.is_power_of_two() && self.ways >= 2,
                "tree-PLRU needs a power-of-two associativity >= 2"
            );
        }
        self.replacement = replacement;
        self
    }

    /// Total capacity in bytes (64-byte blocks).
    pub fn capacity_bytes(&self) -> usize {
        (self.sets * self.ways) << BLOCK_SHIFT
    }
}

/// A PLRU-managed set: explicit ways plus tree state.
#[derive(Clone, Debug)]
struct PlruSet {
    tags: Vec<Option<u64>>,
    tree: TreePlru,
}

impl PlruSet {
    fn new(ways: usize) -> Self {
        Self {
            tags: vec![None; ways],
            tree: TreePlru::new(ways),
        }
    }

    fn access(&mut self, tag: u64) -> bool {
        if let Some(way) = self.tags.iter().position(|t| *t == Some(tag)) {
            self.tree.touch(way);
            return true;
        }
        // Prefer an empty way; otherwise evict the PLRU victim.
        let way = self
            .tags
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| self.tree.victim());
        self.tags[way] = Some(tag);
        self.tree.touch(way);
        false
    }
}

#[derive(Clone, Debug)]
enum Sets {
    Lru(Vec<LruSet<()>>),
    Plru(Vec<PlruSet>),
}

/// One cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Sets,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = match cfg.replacement {
            Replacement::Lru => Sets::Lru(vec![LruSet::new(cfg.ways); cfg.sets]),
            Replacement::TreePlru => Sets::Plru(vec![PlruSet::new(cfg.ways); cfg.sets]),
        };
        Self {
            sets,
            cfg,
            accesses: 0,
            misses: 0,
        }
    }

    /// Looks up `block`; on a miss the block is filled. Returns whether it
    /// hit.
    pub fn access(&mut self, block: u64) -> bool {
        self.accesses += 1;
        let set = (block as usize) & (self.cfg.sets - 1);
        let hit = match &mut self.sets {
            Sets::Lru(sets) => {
                if sets[set].get(block).is_some() {
                    true
                } else {
                    sets[set].insert(block, ());
                    false
                }
            }
            Sets::Plru(sets) => sets[set].access(block),
        };
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// `(accesses, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// Hit latency.
    pub fn latency(&self) -> u64 {
        self.cfg.latency
    }

    /// Level name.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }
}

/// The L1I/L1D + shared L2 + LLC hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Instruction L1.
    pub l1i: Cache,
    /// Data L1.
    pub l1d: Cache,
    /// Unified second level.
    pub l2: Cache,
    /// Last-level cache.
    pub llc: Cache,
    dram_latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from level configurations.
    pub fn new(
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        llc: CacheConfig,
        dram_latency: u64,
    ) -> Self {
        Self {
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            llc: Cache::new(llc),
            dram_latency,
        }
    }

    fn walk(first: &mut Cache, l2: &mut Cache, llc: &mut Cache, dram: u64, addr: u64) -> u64 {
        let block = addr >> BLOCK_SHIFT;
        let mut latency = first.latency();
        if first.access(block) {
            return latency;
        }
        latency += l2.latency();
        if l2.access(block) {
            return latency;
        }
        latency += llc.latency();
        if llc.access(block) {
            return latency;
        }
        latency + dram
    }

    /// Total latency of an instruction fetch at `addr`.
    pub fn access_instruction(&mut self, addr: u64) -> u64 {
        Self::walk(
            &mut self.l1i,
            &mut self.l2,
            &mut self.llc,
            self.dram_latency,
            addr,
        )
    }

    /// Total latency of a data access at `addr`.
    pub fn access_data(&mut self, addr: u64) -> u64 {
        Self::walk(
            &mut self.l1d,
            &mut self.l2,
            &mut self.llc,
            self.dram_latency,
            addr,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(
            CacheConfig::new("L1I", 2, 1, 2),
            CacheConfig::new("L1D", 2, 1, 3),
            CacheConfig::new("L2", 4, 2, 8),
            CacheConfig::new("LLC", 8, 2, 20),
            100,
        )
    }

    #[test]
    fn cold_miss_pays_full_path_then_hits() {
        let mut h = tiny();
        // Cold: L1D(3) + L2(8) + LLC(20) + DRAM(100).
        assert_eq!(h.access_data(0x1000), 131);
        // Warm: L1D hit.
        assert_eq!(h.access_data(0x1000), 3);
        // Same block, different offset: still a hit.
        assert_eq!(h.access_data(0x1004), 3);
    }

    #[test]
    fn l2_backs_up_l1_evictions() {
        let mut h = tiny();
        // Two blocks aliasing to the same direct-mapped L1D set evict each
        // other, but the larger L2 keeps both.
        let a = 0x0000; // set 0
        let b = 0x0080; // 2 sets of 64 B → also set 0
        h.access_data(a);
        h.access_data(b); // evicts a from L1D
        let lat = h.access_data(a); // L1D miss, L2 hit
        assert_eq!(lat, 3 + 8);
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let mut h = tiny();
        h.access_instruction(0x4000);
        // The same block via the data path still misses L1D but hits L2.
        assert_eq!(h.access_data(0x4000), 3 + 8);
        let (_, l1i_misses) = h.l1i.stats();
        assert_eq!(l1i_misses, 1);
    }

    #[test]
    fn plru_cache_hits_on_repeat_and_bounds_capacity() {
        let mut c =
            Cache::new(CacheConfig::new("L", 2, 4, 1).with_replacement(Replacement::TreePlru));
        for i in 0..8u64 {
            assert!(!c.access(i), "cold access must miss");
        }
        for i in 0..8u64 {
            assert!(c.access(i), "full working set should be resident");
        }
        // Overflow the capacity: something must get evicted.
        for i in 0..16u64 {
            c.access(i);
        }
        let (acc, miss) = c.stats();
        assert_eq!(acc, 32);
        assert!(miss > 8, "capacity overflow must evict: {miss}");
    }

    #[test]
    fn plru_and_lru_agree_on_small_working_sets() {
        // While the working set fits, policy cannot matter.
        let mut lru = Cache::new(CacheConfig::new("L", 4, 4, 1));
        let mut plru =
            Cache::new(CacheConfig::new("L", 4, 4, 1).with_replacement(Replacement::TreePlru));
        for round in 0..10 {
            for i in 0..12u64 {
                assert_eq!(lru.access(i), plru.access(i), "round {round} block {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_odd_associativity() {
        let _ = CacheConfig::new("L", 4, 12, 1).with_replacement(Replacement::TreePlru);
    }

    #[test]
    fn stats_count() {
        let mut h = tiny();
        for i in 0..10u64 {
            h.access_data(i * 64);
        }
        let (acc, miss) = h.l1d.stats();
        assert_eq!(acc, 10);
        assert!(miss >= 8, "mostly cold misses: {miss}");
    }
}
