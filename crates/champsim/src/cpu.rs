//! The one-pass cycle-level core model.

use std::time::Instant;

use mbp_core::Predictor;
use mbp_predictors::target::{
    Btb, GshareIndirect, Ittage, IttageConfig, ReturnAddressStack, TargetPredictor,
};
use mbp_trace::champsim::{ChampsimReader, ChampsimRecord};
use mbp_trace::{Branch, BranchKind, TraceError};

use crate::cache::Hierarchy;
use crate::config::ChampsimConfig;
use crate::stats::ChampsimStats;

/// Which target-prediction unit accompanies the direction predictor.
///
/// §VII-A: "we accompanied the GShare predictor with a 8K-entry BTB and a
/// 4K-entry GShare-like indirect target predictor, while for the BATAGE
/// predictor, we used a 64 kB ITTAGE target predictor. The rationale is
/// that if we are going to simulate for performance, it makes sense to have
/// a high-end target predictor accompanying a high-end branch predictor."
pub struct TargetPredictorChoice {
    btb: Btb,
    indirect: Box<dyn TargetPredictor>,
    ras: ReturnAddressStack,
}

impl TargetPredictorChoice {
    /// The GShare pairing: 8K-entry BTB + 4K-entry GShare-like indirect.
    pub fn btb_with_gshare_indirect() -> Self {
        Self {
            btb: Btb::new(10, 8),
            indirect: Box::new(GshareIndirect::new(12, 8)),
            ras: ReturnAddressStack::new(64),
        }
    }

    /// The BATAGE pairing: 8K-entry BTB + 64 kB ITTAGE.
    pub fn btb_with_ittage() -> Self {
        Self {
            btb: Btb::new(10, 8),
            indirect: Box::new(Ittage::new(IttageConfig::default_64kb())),
            ras: ReturnAddressStack::new(64),
        }
    }
}

/// The cycle-level CPU.
pub struct Cpu {
    cfg: ChampsimConfig,
    predictor: Box<dyn Predictor>,
    targets: TargetPredictorChoice,
    hierarchy: Hierarchy,
}

impl Cpu {
    /// Builds a core with a direction predictor and a target unit.
    pub fn new(
        cfg: ChampsimConfig,
        predictor: Box<dyn Predictor>,
        targets: TargetPredictorChoice,
    ) -> Self {
        let hierarchy = Hierarchy::new(
            cfg.l1i.clone(),
            cfg.l1d.clone(),
            cfg.l2.clone(),
            cfg.llc.clone(),
            cfg.dram_latency,
        );
        Self {
            cfg,
            predictor,
            targets,
            hierarchy,
        }
    }

    /// Simulates an in-memory ChampSim-format trace.
    ///
    /// # Errors
    ///
    /// Trace decoding errors.
    pub fn run_bytes(&mut self, data: &[u8]) -> Result<ChampsimStats, TraceError> {
        let reader = ChampsimReader::from_reader(data)?;
        Ok(self.run(reader, None))
    }

    /// Simulates a trace, optionally capping at `max_instructions`
    /// (the paper runs "only the first 100 million instructions", §VII-A).
    pub fn run(&mut self, reader: ChampsimReader, max_instructions: Option<u64>) -> ChampsimStats {
        let start = Instant::now();
        let mut stats = ChampsimStats::default();

        // Frontend state.
        let mut frontend_cycle = 0u64;
        let mut fetched_this_cycle = 0u32;
        let mut stall_until = 0u64;
        let mut last_iblock = u64::MAX;
        // Backend state.
        let mut reg_ready = [0u64; 256];
        let mut rob_ring = vec![0u64; self.cfg.rob_size];
        let mut last_retire_cycle = 0u64;
        let mut retired_this_cycle = 0u32;
        let mut final_retire = 0u64;
        let mut index = 0usize;

        // One-record lookahead: a branch's actual target is the next
        // instruction's address (ChampSim convention; targets are not
        // stored in the trace).
        let mut pending: Option<ChampsimRecord> = None;
        let mut done = false;
        let mut source = reader;

        while !done {
            let current = source.next_instr();
            let Some(rec) = pending.take() else {
                match current {
                    Some(c) => {
                        pending = Some(c);
                        continue;
                    }
                    None => break,
                }
            };
            pending = current;
            if pending.is_none() {
                done = true;
            }
            if let Some(max) = max_instructions {
                if stats.instructions >= max {
                    break;
                }
            }
            stats.instructions += 1;
            index += 1;

            // --- Frontend: ROB occupancy, flush stalls, I-cache.
            if index > self.cfg.rob_size {
                let gate = rob_ring[index % self.cfg.rob_size];
                if gate > frontend_cycle {
                    frontend_cycle = gate;
                    fetched_this_cycle = 0;
                }
            }
            if stall_until > frontend_cycle {
                frontend_cycle = stall_until;
                fetched_this_cycle = 0;
            }
            let iblock = rec.ip >> 6;
            if iblock != last_iblock {
                last_iblock = iblock;
                let latency = self.hierarchy.access_instruction(rec.ip);
                let hit_latency = self.hierarchy.l1i.latency();
                if latency > hit_latency {
                    frontend_cycle += latency - hit_latency;
                    fetched_this_cycle = 0;
                }
            }
            let fetch_cycle = frontend_cycle;
            fetched_this_cycle += 1;
            if fetched_this_cycle >= self.cfg.fetch_width {
                frontend_cycle += 1;
                fetched_this_cycle = 0;
            }

            // --- Execute: dependences and memory.
            let mut ready = fetch_cycle + self.cfg.pipeline_depth;
            for &r in &rec.src_regs {
                if r != 0 {
                    ready = ready.max(reg_ready[r as usize]);
                }
            }
            let mut latency = 1u64;
            for &addr in &rec.src_mem {
                if addr != 0 {
                    latency = latency.max(self.hierarchy.access_data(addr));
                }
            }
            for &addr in &rec.dest_mem {
                if addr != 0 {
                    // Stores occupy the hierarchy but do not stall retire.
                    self.hierarchy.access_data(addr);
                }
            }
            let completion = ready + latency;
            for &r in &rec.dest_regs {
                if r != 0 && r & 0x40 == 0 {
                    reg_ready[r as usize] = completion;
                }
            }

            // --- Retire: in order, bounded width.
            let mut retire = completion.max(last_retire_cycle);
            if retire > last_retire_cycle {
                last_retire_cycle = retire;
                retired_this_cycle = 1;
            } else {
                retired_this_cycle += 1;
                if retired_this_cycle > self.cfg.retire_width {
                    last_retire_cycle += 1;
                    retired_this_cycle = 1;
                    retire = last_retire_cycle;
                }
            }
            rob_ring[index % self.cfg.rob_size] = retire;
            final_retire = final_retire.max(retire);

            // --- Branches.
            if rec.is_branch {
                let opcode = rec.branch_opcode().unwrap_or_default();
                let taken = rec.branch_taken;
                let actual_target = match (&pending, taken) {
                    (Some(next), true) => next.ip,
                    _ => 0,
                };
                let branch = Branch::new(rec.ip, actual_target, opcode, taken);
                let mut flush = false;
                let mut bubble = false;

                if opcode.is_conditional() {
                    stats.conditional_branches += 1;
                    let predicted = self.predictor.predict(rec.ip);
                    if predicted != taken {
                        stats.mispredictions += 1;
                        flush = true;
                    }
                    self.predictor.train(&branch);
                }
                self.predictor.track(&branch);

                if taken {
                    let target_ok = match (opcode.kind(), opcode.is_indirect()) {
                        (BranchKind::Ret, _) => {
                            let ok = self.targets.ras.predict_return() == Some(actual_target);
                            if !ok {
                                flush = true;
                            }
                            ok
                        }
                        (_, true) => {
                            let ok =
                                self.targets.indirect.predict_target(rec.ip) == Some(actual_target);
                            if !ok {
                                flush = true;
                            }
                            ok
                        }
                        (_, false) => {
                            // Direct branches: a BTB miss costs a decode
                            // bubble, not a full pipeline flush.
                            let ok = self.targets.btb.predict_target(rec.ip) == Some(actual_target);
                            if !ok {
                                bubble = true;
                            }
                            ok
                        }
                    };
                    if !target_ok {
                        stats.target_mispredictions += 1;
                    }
                    self.targets.btb.update(&branch);
                    if opcode.is_indirect() {
                        self.targets.indirect.update(&branch);
                    }
                }
                self.targets.ras.on_branch(&branch);

                if flush {
                    stall_until = stall_until.max(completion + self.cfg.mispredict_flush_penalty);
                } else if bubble {
                    stall_until = stall_until.max(fetch_cycle + self.cfg.btb_miss_penalty);
                }
            }
        }

        stats.cycles = final_retire.max(1);
        stats.ipc = stats.instructions as f64 / stats.cycles as f64;
        stats.mpki = if stats.instructions == 0 {
            0.0
        } else {
            stats.mispredictions as f64 * 1000.0 / stats.instructions as f64
        };
        stats.cache = [
            self.hierarchy.l1i.stats(),
            self.hierarchy.l1d.stats(),
            self.hierarchy.l2.stats(),
            self.hierarchy.llc.stats(),
        ];
        stats.simulation_time = start.elapsed().as_secs_f64();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_predictors::{AlwaysTaken, Bimodal, Gshare};
    use mbp_trace::champsim::ChampsimWriter;
    use mbp_trace::{BranchRecord, Opcode};

    fn loop_trace(period: u32, reps: u32, gap: u32) -> Vec<u8> {
        let mut w = ChampsimWriter::new(Vec::new());
        for _ in 0..reps {
            for i in 0..period {
                w.write_branch_record(&BranchRecord::new(
                    Branch::new(
                        0x40_1000,
                        0x40_1000 - 4 * (gap as u64 + 1),
                        Opcode::conditional_direct(),
                        i + 1 != period,
                    ),
                    gap,
                ))
                .unwrap();
            }
        }
        w.finish().unwrap()
    }

    fn run_with(predictor: Box<dyn Predictor>, trace: &[u8]) -> ChampsimStats {
        let mut cpu = Cpu::new(
            ChampsimConfig::tiny(),
            predictor,
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        cpu.run_bytes(trace).unwrap()
    }

    #[test]
    fn counts_instructions_and_branches() {
        let trace = loop_trace(8, 50, 5);
        let stats = run_with(Box::new(Bimodal::new(10)), &trace);
        // Lookahead consumes targets from the *next* record, so the very
        // last instruction has no successor and is still simulated.
        assert_eq!(stats.instructions, 8 * 50 * 6);
        assert_eq!(stats.conditional_branches, 8 * 50);
        assert!(stats.cycles > 0);
        assert!(stats.ipc > 0.0);
    }

    #[test]
    fn better_predictor_gives_better_ipc() {
        let trace = loop_trace(6, 400, 4);
        let bad = run_with(Box::new(AlwaysTaken), &trace);
        let good = run_with(Box::new(Gshare::new(12, 12)), &trace);
        assert!(good.mispredictions < bad.mispredictions);
        assert!(
            good.ipc > bad.ipc,
            "good {:.3} !> bad {:.3}",
            good.ipc,
            bad.ipc
        );
    }

    #[test]
    fn dependency_free_stream_sustains_full_width() {
        // Hand-built records with no registers, no memory, no branches:
        // nothing can stall, so IPC must approach the fetch width.
        let mut w = ChampsimWriter::new(Vec::new());
        for i in 0..20_000u64 {
            w.write_instr(&mbp_trace::champsim::ChampsimRecord {
                ip: 0x1000 + (i % 16) * 4, // one cache block of code
                ..Default::default()
            })
            .unwrap();
        }
        let trace = w.finish().unwrap();
        let cfg = ChampsimConfig::tiny();
        let width = cfg.fetch_width as f64;
        let mut cpu = Cpu::new(
            cfg,
            Box::new(Bimodal::new(8)),
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        let stats = cpu.run_bytes(&trace).unwrap();
        assert!(
            stats.ipc > 0.9 * width && stats.ipc <= width,
            "IPC {:.3} should approach width {width}",
            stats.ipc
        );
    }

    #[test]
    fn serial_dependency_chain_limits_ipc_to_one() {
        // Every instruction reads the register the previous one wrote:
        // completion times serialize at 1 per cycle regardless of width.
        let mut w = ChampsimWriter::new(Vec::new());
        for i in 0..10_000u64 {
            w.write_instr(&mbp_trace::champsim::ChampsimRecord {
                ip: 0x1000 + (i % 16) * 4,
                src_regs: [5, 0, 0, 0],
                dest_regs: [5, 0],
                ..Default::default()
            })
            .unwrap();
        }
        let trace = w.finish().unwrap();
        let mut cpu = Cpu::new(
            ChampsimConfig::tiny(),
            Box::new(Bimodal::new(8)),
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        let stats = cpu.run_bytes(&trace).unwrap();
        assert!(
            stats.ipc <= 1.05,
            "a serial chain cannot exceed 1 IPC, got {:.3}",
            stats.ipc
        );
        assert!(
            stats.ipc > 0.8,
            "chain should still sustain ~1 IPC, got {:.3}",
            stats.ipc
        );
    }

    #[test]
    fn cold_load_latency_shows_up_in_cycles() {
        // Identical streams except one has scattered cold loads: the memory
        // hierarchy must cost cycles.
        let build = |with_loads: bool| {
            let mut w = ChampsimWriter::new(Vec::new());
            for i in 0..5_000u64 {
                let mut rec = mbp_trace::champsim::ChampsimRecord {
                    ip: 0x1000 + (i % 16) * 4,
                    src_regs: [3, 0, 0, 0],
                    dest_regs: [3, 0],
                    ..Default::default()
                };
                if with_loads && i % 4 == 0 {
                    rec.src_mem[0] = 0x900_0000 + i * 4096; // one block each: all cold
                }
                w.write_instr(&rec).unwrap();
            }
            w.finish().unwrap()
        };
        let run = |trace: &[u8]| {
            let mut cpu = Cpu::new(
                ChampsimConfig::tiny(),
                Box::new(Bimodal::new(8)),
                TargetPredictorChoice::btb_with_gshare_indirect(),
            );
            cpu.run_bytes(trace).unwrap()
        };
        let without = run(&build(false));
        let with = run(&build(true));
        assert!(
            with.cycles > without.cycles * 3 / 2,
            "cold loads must cost cycles: {} vs {}",
            with.cycles,
            without.cycles
        );
        let (_, l1d_misses) = with.cache[1];
        assert!(l1d_misses > 1000, "loads should miss: {l1d_misses}");
    }

    #[test]
    fn ipc_bounded_by_width() {
        let trace = loop_trace(8, 100, 6);
        let stats = run_with(Box::new(Gshare::new(12, 12)), &trace);
        assert!(stats.ipc <= ChampsimConfig::tiny().fetch_width as f64);
    }

    #[test]
    fn max_instructions_caps_run() {
        let trace = loop_trace(8, 100, 6);
        let mut cpu = Cpu::new(
            ChampsimConfig::tiny(),
            Box::new(Bimodal::new(10)),
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        let reader = ChampsimReader::from_reader(&trace[..]).unwrap();
        let stats = cpu.run(reader, Some(500));
        assert!(stats.instructions <= 501);
    }

    #[test]
    fn caches_see_traffic() {
        let trace = loop_trace(8, 200, 6);
        let stats = run_with(Box::new(Bimodal::new(10)), &trace);
        let (l1d_acc, _) = stats.cache[1];
        assert!(l1d_acc > 0, "filler loads must reach the L1D");
        let (l1i_acc, l1i_miss) = stats.cache[0];
        assert!(l1i_acc > 0);
        assert!(l1i_miss < l1i_acc, "loop code should hit the L1I");
    }

    #[test]
    fn ittage_pairing_runs() {
        let trace = loop_trace(4, 50, 3);
        let mut cpu = Cpu::new(
            ChampsimConfig::ice_lake_like(),
            Box::new(Gshare::new(12, 12)),
            TargetPredictorChoice::btb_with_ittage(),
        );
        let stats = cpu.run_bytes(&trace).unwrap();
        assert!(stats.ipc > 0.0);
    }
}
