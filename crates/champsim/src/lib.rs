//! A ChampSim-like cycle-level simulator — the paper's second baseline.
//!
//! ChampSim is "a cycle-accurate simulator for microarchitecture study"
//! (§I): it models the whole out-of-order core and memory hierarchy, which
//! is why its per-trace runtime is minutes where MBPlib's is milliseconds
//! (Table III) and why its runtime barely depends on which branch predictor
//! is plugged in. This crate reproduces that *structure* with a simplified
//! one-pass cycle model:
//!
//! * every instruction of a per-instruction trace is processed (fetch
//!   bandwidth, L1I lookups, register dependences, load/store latencies
//!   through an L1D/L2/LLC hierarchy, ROB occupancy, retire bandwidth);
//! * branches go through a direction predictor, BTB, indirect target
//!   predictor and return address stack; mispredictions flush the frontend;
//! * the default configuration follows ChampSim's Ice-Lake-ish defaults
//!   (§VII-A), and the two predictor pairings of the paper are provided:
//!   GShare + 8K-entry BTB + 4K-entry GShare-like indirect predictor, and
//!   BATAGE + 64 kB ITTAGE.
//!
//! It is *not* ChampSim: there is no speculative wrong-path execution, no
//! MSHR/bandwidth modeling, and scheduling is approximated in one pass.
//! Those simplifications change absolute IPC, not the two facts the paper
//! uses ChampSim for — that cycle simulation is orders of magnitude slower
//! than trace-filtered branch simulation, and that predictor cost is a
//! negligible share of its runtime.
//!
//! # Examples
//!
//! ```
//! use champsim_lite::{ChampsimConfig, Cpu, TargetPredictorChoice};
//! use mbp_predictors::Gshare;
//! use mbp_trace::champsim::ChampsimWriter;
//! use mbp_trace::{Branch, BranchRecord, Opcode};
//!
//! let mut w = ChampsimWriter::new(Vec::new());
//! for i in 0..100u64 {
//!     w.write_branch_record(&BranchRecord::new(
//!         Branch::new(0x40_1000, 0x40_0f00, Opcode::conditional_direct(), i % 5 != 4),
//!         6,
//!     ))?;
//! }
//! let trace = w.finish()?;
//!
//! let mut cpu = Cpu::new(
//!     ChampsimConfig::ice_lake_like(),
//!     Box::new(Gshare::new(14, 12)),
//!     TargetPredictorChoice::btb_with_gshare_indirect(),
//! );
//! let stats = cpu.run_bytes(&trace)?;
//! assert!(stats.ipc > 0.0 && stats.ipc <= 6.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod config;
mod cpu;
mod stats;

pub use cache::{Cache, CacheConfig, Hierarchy, Replacement};
pub use config::ChampsimConfig;
pub use cpu::{Cpu, TargetPredictorChoice};
pub use stats::{cpi_model, ChampsimStats, PipelineModel};
