//! Core configuration.

use crate::cache::CacheConfig;

/// Parameters of the cycle model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChampsimConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Front-end depth: cycles from fetch to execute for a
    /// dependence-free instruction.
    pub pipeline_depth: u64,
    /// Extra cycles to refill the frontend after a branch misprediction
    /// (added on top of waiting for the branch to resolve).
    pub mispredict_flush_penalty: u64,
    /// Frontend bubble when a taken branch misses in the BTB.
    pub btb_miss_penalty: u64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// Memory latency on an LLC miss.
    pub dram_latency: u64,
}

impl ChampsimConfig {
    /// ChampSim's default, "similar to Intel's Ice Lake architecture"
    /// (§VII-A): a 6-wide core with a 352-entry ROB and a 48 kB L1D.
    pub fn ice_lake_like() -> Self {
        Self {
            fetch_width: 6,
            retire_width: 6,
            rob_size: 352,
            pipeline_depth: 10,
            mispredict_flush_penalty: 6,
            btb_miss_penalty: 2,
            l1i: CacheConfig::new("L1I", 64, 8, 4),
            l1d: CacheConfig::new("L1D", 64, 12, 5),
            l2: CacheConfig::new("L2", 1024, 8, 10),
            llc: CacheConfig::new("LLC", 2048, 16, 30),
            dram_latency: 160,
        }
    }

    /// A small, fast configuration for tests.
    pub fn tiny() -> Self {
        Self {
            fetch_width: 2,
            retire_width: 2,
            rob_size: 32,
            pipeline_depth: 5,
            mispredict_flush_penalty: 4,
            btb_miss_penalty: 2,
            l1i: CacheConfig::new("L1I", 8, 2, 2),
            l1d: CacheConfig::new("L1D", 8, 2, 3),
            l2: CacheConfig::new("L2", 32, 4, 8),
            llc: CacheConfig::new("LLC", 64, 8, 20),
            dram_latency: 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ice_lake_capacities() {
        let c = ChampsimConfig::ice_lake_like();
        // 64 sets × 12 ways × 64 B = 48 kB L1D, 2 MB LLC.
        assert_eq!(c.l1d.capacity_bytes(), 48 * 1024);
        assert_eq!(c.llc.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.rob_size, 352);
    }
}
