//! Error type for trace reading and writing.

use std::error::Error;
use std::fmt;
use std::io;

use mbp_compress::CompressError;

/// Errors produced while reading, writing or translating traces.
///
/// Every decode path over untrusted input returns one of these variants;
/// none of the readers panic on malformed bytes (the fault-injection suite
/// in `mbp-faultsim` drives every reader through thousands of mutants to
/// pin that).
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The compression layer rejected the stream.
    Decompress(CompressError),
    /// The file does not start with the expected signature.
    BadSignature {
        /// Format name (e.g. `"SBBT"`).
        format: &'static str,
    },
    /// The trace declares a major version this reader cannot parse.
    UnsupportedVersion {
        /// Major, minor, patch from the header.
        version: (u8, u8, u8),
    },
    /// A packet or line violates the format's validity rules.
    Invalid {
        /// What rule was violated.
        what: &'static str,
        /// Byte (binary formats) or line (text formats) position.
        position: u64,
    },
    /// A declared header field disagrees with the actual stream — e.g. a
    /// branch count that does not match the body length. Caught *before*
    /// any allocation is sized from the declared value.
    Corrupt {
        /// Name of the header field that lied.
        field: &'static str,
        /// The value the header declared.
        declared: u64,
        /// The value implied by the actual stream.
        actual: u64,
    },
    /// The stream ended in the middle of a packet or section.
    Truncated,
    /// A record cannot be encoded (e.g. gap > 4095 or address out of the
    /// 52-bit range).
    Unencodable(String),
    /// The consumer asked the source to stop: a sweep watchdog fired or an
    /// operator interrupt is draining the run. Not a data error — the bytes
    /// were fine — but it travels the same channel so every driver already
    /// unwinds cleanly.
    Cancelled {
        /// Why the run was cancelled (e.g. `"deadline"`, `"shutdown"`).
        reason: &'static str,
    },
}

impl TraceError {
    pub(crate) fn invalid(what: &'static str, position: u64) -> Self {
        TraceError::Invalid { what, position }
    }

    pub(crate) fn corrupt(field: &'static str, declared: u64, actual: u64) -> Self {
        TraceError::Corrupt {
            field,
            declared,
            actual,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Decompress(e) => write!(f, "trace decompression error: {e}"),
            TraceError::BadSignature { format } => {
                write!(f, "missing {format} signature")
            }
            TraceError::UnsupportedVersion { version: (a, b, c) } => {
                write!(f, "unsupported trace version {a}.{b}.{c}")
            }
            TraceError::Invalid { what, position } => {
                write!(f, "invalid trace content at {position}: {what}")
            }
            TraceError::Corrupt {
                field,
                declared,
                actual,
            } => {
                write!(
                    f,
                    "corrupt trace header: {field} declares {declared} but the stream implies {actual}"
                )
            }
            TraceError::Truncated => write!(f, "trace ends mid-record"),
            TraceError::Unencodable(msg) => write!(f, "record cannot be encoded: {msg}"),
            TraceError::Cancelled { reason } => {
                write!(f, "simulation cancelled: {reason}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Decompress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<CompressError> for TraceError {
    fn from(e: CompressError) -> Self {
        TraceError::Decompress(e)
    }
}
