//! Error type for trace reading and writing.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while reading, writing or translating traces.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected signature.
    BadSignature {
        /// Format name (e.g. `"SBBT"`).
        format: &'static str,
    },
    /// The trace declares a major version this reader cannot parse.
    UnsupportedVersion {
        /// Major, minor, patch from the header.
        version: (u8, u8, u8),
    },
    /// A packet or line violates the format's validity rules.
    Invalid {
        /// What rule was violated.
        what: &'static str,
        /// Byte (binary formats) or line (text formats) position.
        position: u64,
    },
    /// The stream ended in the middle of a packet or section.
    Truncated,
    /// A record cannot be encoded (e.g. gap > 4095 or address out of the
    /// 52-bit range).
    Unencodable(String),
}

impl TraceError {
    pub(crate) fn invalid(what: &'static str, position: u64) -> Self {
        TraceError::Invalid { what, position }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadSignature { format } => {
                write!(f, "missing {format} signature")
            }
            TraceError::UnsupportedVersion { version: (a, b, c) } => {
                write!(f, "unsupported trace version {a}.{b}.{c}")
            }
            TraceError::Invalid { what, position } => {
                write!(f, "invalid trace content at {position}: {what}")
            }
            TraceError::Truncated => write!(f, "trace ends mid-record"),
            TraceError::Unencodable(msg) => write!(f, "record cannot be encoded: {msg}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}
