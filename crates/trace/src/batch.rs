//! Struct-of-arrays branch batches: the data-oriented hot-path currency.
//!
//! The batch pipeline used to move `Vec<BranchRecord>` (array-of-structs)
//! between the decoder and the simulators. [`BranchBatch`] stores the same
//! records as parallel columns — one `Vec` per field — so the consumers that
//! only touch a subset of the fields (the simulator's bookkeeping loop reads
//! gaps/outcomes/addresses but never targets; a predictor kernel hashes the
//! `pcs` column in a tight, autovectorizable loop) stream exactly the bytes
//! they need, and the SBBT block decoder writes each field straight into its
//! column without materializing intermediate structs.
//!
//! Columns (all `len()` entries long, an invariant checked by
//! [`BranchBatch::debug_assert_aligned`] after every decode):
//!
//! * `pcs` — branch instruction addresses,
//! * `targets` — branch target addresses,
//! * `gaps` — non-branch instructions since the previous branch,
//! * `taken` — outcomes as `0`/`1` bytes (byte-per-branch beats a bitset
//!   here: the hot loops read outcomes randomly, not in bulk),
//! * `ops` — the 4-bit SBBT opcode encoding (bit 0 conditional, bit 1
//!   indirect, bits 2–3 the [`BranchKind`](crate::BranchKind)), which keeps
//!   the common `is conditional?` test a one-byte AND.

use crate::{Branch, BranchRecord, Opcode};

/// Mutable views of every column, in declaration order:
/// `(pcs, targets, gaps, taken, ops)`.
pub type ColumnsMut<'a> = (
    &'a mut [u64],
    &'a mut [u64],
    &'a mut [u32],
    &'a mut [u8],
    &'a mut [u8],
);

/// A block of branch records stored as struct-of-arrays columns.
///
/// # Examples
///
/// ```
/// use mbp_trace::{Branch, BranchBatch, BranchRecord, Opcode};
///
/// let rec = BranchRecord::new(
///     Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
///     7,
/// );
/// let mut batch = BranchBatch::new();
/// batch.push_record(&rec);
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch.pcs(), &[0x1000]);
/// assert!(batch.is_conditional(0));
/// assert_eq!(batch.record(0), rec);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchBatch {
    pcs: Vec<u64>,
    targets: Vec<u64>,
    gaps: Vec<u32>,
    taken: Vec<u8>,
    ops: Vec<u8>,
}

impl BranchBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` records per column.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            pcs: Vec::with_capacity(capacity),
            targets: Vec::with_capacity(capacity),
            gaps: Vec::with_capacity(capacity),
            taken: Vec::with_capacity(capacity),
            ops: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from a slice of records (tests, in-memory sources).
    pub fn from_records(records: &[BranchRecord]) -> Self {
        let mut batch = Self::with_capacity(records.len());
        batch.extend_from_records(records);
        batch
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Truncates every column to zero length, keeping the allocations, so a
    /// caller looping `fill_batch` never re-zeroes or reallocates columns.
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.targets.clear();
        self.gaps.clear();
        self.taken.clear();
        self.ops.clear();
    }

    /// Reserves room for `additional` more records in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.pcs.reserve(additional);
        self.targets.reserve(additional);
        self.gaps.reserve(additional);
        self.taken.reserve(additional);
        self.ops.reserve(additional);
    }

    /// Appends one record, fanning its fields across the columns.
    #[inline]
    pub fn push_record(&mut self, rec: &BranchRecord) {
        let b = rec.branch;
        self.push_parts(b.ip(), b.target(), rec.gap, b.is_taken(), b.opcode().bits());
    }

    /// Appends raw column values. `op_bits` must be a valid 4-bit SBBT
    /// opcode encoding ([`Opcode::bits`]); the block decoder uses this entry
    /// point to write validated packet fields straight into the columns.
    #[inline]
    pub fn push_parts(&mut self, pc: u64, target: u64, gap: u32, taken: bool, op_bits: u8) {
        self.pcs.push(pc);
        self.targets.push(target);
        self.gaps.push(gap);
        self.taken.push(taken as u8);
        self.ops.push(op_bits);
    }

    /// Resizes every column to exactly `n` records and returns the column
    /// slices `(pcs, targets, gaps, taken, ops)` for direct overwriting —
    /// the block decoder's entry point.
    ///
    /// Existing entries are kept (only the grown tail is zero-filled), so a
    /// buffer reused at a steady batch size is never re-zeroed; callers are
    /// expected to overwrite every lane they keep, and to
    /// [`truncate`](BranchBatch::truncate) down to the written prefix if
    /// they stop early.
    pub fn resize_for_overwrite(&mut self, n: usize) -> ColumnsMut<'_> {
        self.pcs.resize(n, 0);
        self.targets.resize(n, 0);
        self.gaps.resize(n, 0);
        self.taken.resize(n, 0);
        self.ops.resize(n, 0);
        (
            &mut self.pcs,
            &mut self.targets,
            &mut self.gaps,
            &mut self.taken,
            &mut self.ops,
        )
    }

    /// Shortens the batch to `n` records, keeping allocations. No-op if the
    /// batch is already `n` records or shorter.
    pub fn truncate(&mut self, n: usize) {
        self.pcs.truncate(n);
        self.targets.truncate(n);
        self.gaps.truncate(n);
        self.taken.truncate(n);
        self.ops.truncate(n);
    }

    /// Appends every record of `records` column-wise.
    pub fn extend_from_records(&mut self, records: &[BranchRecord]) {
        self.pcs.extend(records.iter().map(|r| r.branch.ip()));
        self.targets
            .extend(records.iter().map(|r| r.branch.target()));
        self.gaps.extend(records.iter().map(|r| r.gap));
        self.taken
            .extend(records.iter().map(|r| r.branch.is_taken() as u8));
        self.ops
            .extend(records.iter().map(|r| r.branch.opcode().bits()));
        self.debug_assert_aligned();
    }

    /// Branch instruction addresses.
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// Branch target addresses.
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Non-branch instructions since the previous branch, per record.
    pub fn gaps(&self) -> &[u32] {
        &self.gaps
    }

    /// Outcomes as `0`/`1` bytes.
    pub fn taken(&self) -> &[u8] {
        &self.taken
    }

    /// 4-bit SBBT opcode encodings ([`Opcode::bits`]).
    pub fn ops(&self) -> &[u8] {
        &self.ops
    }

    /// Whether record `i` is a conditional branch (bit 0 of its opcode).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn is_conditional(&self, i: usize) -> bool {
        self.ops[i] & 0b1 != 0
    }

    /// Instructions record `i` advances the instruction counter by (its gap
    /// plus the branch itself).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn instructions(&self, i: usize) -> u64 {
        self.gaps[i] as u64 + 1
    }

    /// Reassembles record `i`'s [`Branch`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn branch(&self, i: usize) -> Branch {
        // `ops` only ever holds encodings produced by `Opcode::bits` or by
        // the validating packet decoder, so the reserved patterns cannot
        // appear; degrade to the default opcode rather than panicking if
        // that invariant ever breaks.
        let opcode = Opcode::from_bits(self.ops[i] & 0xF).unwrap_or_default();
        Branch::new(self.pcs[i], self.targets[i], opcode, self.taken[i] != 0)
    }

    /// Reassembles record `i` as a [`BranchRecord`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn record(&self, i: usize) -> BranchRecord {
        BranchRecord::new(self.branch(i), self.gaps[i])
    }

    /// Iterates the batch as reassembled records.
    pub fn iter_records(&self) -> impl Iterator<Item = BranchRecord> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }

    /// Appends every record to `out` (the sweep's decode-once pass).
    pub fn append_records_to(&self, out: &mut Vec<BranchRecord>) {
        out.reserve(self.len());
        out.extend(self.iter_records());
    }

    /// Asserts (in debug builds) that every column holds the same number of
    /// entries. Producers call this after each decode so a column writer
    /// that skips a field fails fast instead of desynchronizing the batch.
    #[inline]
    pub fn debug_assert_aligned(&self) {
        debug_assert_eq!(self.pcs.len(), self.targets.len(), "targets column");
        debug_assert_eq!(self.pcs.len(), self.gaps.len(), "gaps column");
        debug_assert_eq!(self.pcs.len(), self.taken.len(), "taken column");
        debug_assert_eq!(self.pcs.len(), self.ops.len(), "ops column");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchKind, Opcode};

    fn sample_records() -> Vec<BranchRecord> {
        vec![
            BranchRecord::new(
                Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
                3,
            ),
            BranchRecord::new(
                Branch::new(0x1010, 0x3000, Opcode::unconditional_direct(), true),
                0,
            ),
            BranchRecord::new(Branch::new(0x1020, 0x4000, Opcode::ret(), true), 9),
            BranchRecord::new(
                Branch::new(0x1030, 0, Opcode::new(true, true, BranchKind::Jump), false),
                4095,
            ),
        ]
    }

    #[test]
    fn roundtrips_every_field() {
        let records = sample_records();
        let batch = BranchBatch::from_records(&records);
        assert_eq!(batch.len(), records.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(batch.record(i), *rec, "record {i}");
            assert_eq!(batch.is_conditional(i), rec.branch.is_conditional());
            assert_eq!(batch.instructions(i), rec.instructions());
        }
        let back: Vec<BranchRecord> = batch.iter_records().collect();
        assert_eq!(back, records);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut batch = BranchBatch::from_records(&sample_records());
        let cap = batch.pcs.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.pcs.capacity(), cap, "clear must not drop buffers");
    }

    #[test]
    fn columns_expose_raw_values() {
        let batch = BranchBatch::from_records(&sample_records());
        assert_eq!(batch.pcs(), &[0x1000, 0x1010, 0x1020, 0x1030]);
        assert_eq!(batch.gaps(), &[3, 0, 9, 4095]);
        assert_eq!(batch.taken(), &[1, 1, 1, 0]);
        assert_eq!(batch.ops()[0], Opcode::conditional_direct().bits());
        assert_eq!(batch.ops()[2], Opcode::ret().bits());
    }

    #[test]
    fn append_records_to_accumulates() {
        let records = sample_records();
        let batch = BranchBatch::from_records(&records);
        let mut out = records.clone();
        batch.append_records_to(&mut out);
        assert_eq!(out.len(), 2 * records.len());
        assert_eq!(&out[records.len()..], &records[..]);
    }

    #[test]
    fn extend_appends_after_existing_rows() {
        let records = sample_records();
        let mut batch = BranchBatch::from_records(&records[..2]);
        batch.extend_from_records(&records[2..]);
        let back: Vec<BranchRecord> = batch.iter_records().collect();
        assert_eq!(back, records);
    }
}
