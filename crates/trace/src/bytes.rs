//! Panic-free primitives for reading little-endian words out of untrusted
//! byte streams.
//!
//! Every decoder in this crate funnels its raw loads through these helpers
//! so that no slice-length `unwrap`/`expect` survives on a path fed by file
//! contents: out-of-range reads surface as `None` (mapped to
//! [`TraceError::Truncated`](crate::TraceError::Truncated) by callers) and
//! in-range reads are proven infallible by construction.

/// Reads a little-endian `u64` at byte offset `off`, or `None` if fewer
/// than 8 bytes remain.
#[inline]
pub(crate) fn le_u64_at(bytes: &[u8], off: usize) -> Option<u64> {
    let chunk = bytes.get(off..off.checked_add(8)?)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(chunk); // chunk is exactly 8 bytes by construction
    Some(u64::from_le_bytes(buf))
}

/// Splits a fixed 16-byte packet into its two little-endian 64-bit blocks.
///
/// The fixed-size argument lets the compiler elide every bounds check: this
/// compiles to two plain loads, which is what keeps it usable from the
/// `fill_batch` hot loop.
#[inline(always)]
pub(crate) fn split_u64_pair(bytes: &[u8; 16]) -> (u64, u64) {
    let mut lo = [0u8; 8];
    let mut hi = [0u8; 8];
    lo.copy_from_slice(&bytes[..8]);
    hi.copy_from_slice(&bytes[8..]);
    (u64::from_le_bytes(lo), u64::from_le_bytes(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_u64_reads_and_bounds() {
        let data: Vec<u8> = (0u8..16).collect();
        assert_eq!(le_u64_at(&data, 0), Some(0x0706_0504_0302_0100));
        assert_eq!(le_u64_at(&data, 8), Some(0x0F0E_0D0C_0B0A_0908));
        assert_eq!(le_u64_at(&data, 9), None);
        assert_eq!(le_u64_at(&data, usize::MAX), None, "no overflow panic");
        assert_eq!(le_u64_at(&[], 0), None);
    }

    #[test]
    fn split_matches_individual_reads() {
        let mut packet = [0u8; 16];
        for (i, b) in packet.iter_mut().enumerate() {
            *b = i as u8 + 1;
        }
        let (lo, hi) = split_u64_pair(&packet);
        assert_eq!(Some(lo), le_u64_at(&packet, 0));
        assert_eq!(Some(hi), le_u64_at(&packet, 8));
    }
}
