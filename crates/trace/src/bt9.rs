//! A BT9-flavoured plain-text trace format, as used by the CBP5 framework.
//!
//! BT9 describes "a graph where the nodes are the branches present in a
//! program and their possible outcomes are the edges and then follows with a
//! section that describes the sequence of edges taken" (§IV). Reading it
//! requires text parsing plus an indirection through the edge table for
//! every dynamic branch — the two costs SBBT removes.
//!
//! Layout:
//!
//! ```text
//! BT9_SPA_TRACE_FORMAT
//! total_instruction_count: 1024
//! branch_instruction_count: 3
//! BT9_NODES
//! NODE 0 0x401000 JMP+DIR+CND
//! BT9_EDGES
//! EDGE 0 0 T 0x402000 12
//! BT9_EDGE_SEQUENCE
//! 0
//! 0
//! EOF
//! ```

use std::collections::HashMap;

use mbp_utils::FastHashBuilder;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use crate::{Branch, BranchKind, BranchRecord, Opcode, TraceError};

const SIGNATURE: &str = "BT9_SPA_TRACE_FORMAT";

fn opcode_mnemonic(op: Opcode) -> String {
    format!(
        "{}+{}+{}",
        match op.kind() {
            BranchKind::Jump => "JMP",
            BranchKind::Call => "CALL",
            BranchKind::Ret => "RET",
        },
        if op.is_indirect() { "IND" } else { "DIR" },
        if op.is_conditional() { "CND" } else { "UCD" },
    )
}

fn parse_mnemonic(s: &str, line: u64) -> Result<Opcode, TraceError> {
    let mut parts = s.split('+');
    let kind = match parts.next() {
        Some("JMP") => BranchKind::Jump,
        Some("CALL") => BranchKind::Call,
        Some("RET") => BranchKind::Ret,
        _ => return Err(TraceError::invalid("unknown branch class", line)),
    };
    let indirect = match parts.next() {
        Some("IND") => true,
        Some("DIR") => false,
        _ => return Err(TraceError::invalid("unknown directness", line)),
    };
    let conditional = match parts.next() {
        Some("CND") => true,
        Some("UCD") => false,
        _ => return Err(TraceError::invalid("unknown conditionality", line)),
    };
    Ok(Opcode::new(conditional, indirect, kind))
}

fn parse_hex(s: &str, line: u64) -> Result<u64, TraceError> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| TraceError::invalid("address missing 0x prefix", line))?;
    u64::from_str_radix(digits, 16).map_err(|_| TraceError::invalid("bad hex address", line))
}

/// In-memory representation of a BT9 trace: the branch graph plus the edge
/// sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bt9Trace {
    /// Static branches: instruction address and opcode per node.
    pub nodes: Vec<(u64, Opcode)>,
    /// Dynamic outcomes: `(node, taken, target, gap)` per edge.
    pub edges: Vec<(u32, bool, u64, u32)>,
    /// The trace proper: indices into `edges`.
    pub sequence: Vec<u32>,
    /// Total instructions executed while tracing.
    pub instruction_count: u64,
}

impl Bt9Trace {
    /// Number of dynamic branches in the trace.
    pub fn branch_count(&self) -> u64 {
        self.sequence.len() as u64
    }

    /// Reconstructs the `i`-th dynamic branch by following the graph.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (construction validates edge/node ids).
    pub fn record(&self, i: usize) -> BranchRecord {
        let (node, taken, target, gap) = self.edges[self.sequence[i] as usize];
        let (ip, opcode) = self.nodes[node as usize];
        BranchRecord::new(Branch::new(ip, target, opcode, taken), gap)
    }

    /// Iterates the dynamic branches in order.
    pub fn records(&self) -> impl Iterator<Item = BranchRecord> + '_ {
        (0..self.sequence.len()).map(move |i| self.record(i))
    }
}

/// Builds BT9 traces from a stream of branch records.
///
/// The builder interns the static branch (node) and its dynamic outcome
/// (edge) on the fly, exactly like the original tracer.
#[derive(Debug, Default)]
pub struct Bt9Writer {
    trace: Bt9Trace,
    node_ids: HashMap<u64, u32, FastHashBuilder>,
    edge_ids: HashMap<(u32, bool, u64, u32), u32, FastHashBuilder>,
}

impl Bt9Writer {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a dynamic branch.
    pub fn write_record(&mut self, rec: &BranchRecord) {
        let b = rec.branch;
        let next_node = self.node_ids.len() as u32;
        let node = *self.node_ids.entry(b.ip()).or_insert(next_node);
        if node == next_node {
            self.trace.nodes.push((b.ip(), b.opcode()));
        }
        let key = (node, b.is_taken(), b.target(), rec.gap);
        let next_edge = self.edge_ids.len() as u32;
        let edge = *self.edge_ids.entry(key).or_insert(next_edge);
        if edge == next_edge {
            self.trace.edges.push(key);
        }
        self.trace.sequence.push(edge);
        self.trace.instruction_count += rec.instructions();
    }

    /// Finishes the build.
    pub fn finish(self) -> Bt9Trace {
        self.trace
    }

    /// Serializes the trace as BT9 text.
    pub fn to_text(&self) -> String {
        let t = &self.trace;
        let mut out = String::new();
        let _ = writeln!(out, "{SIGNATURE}");
        let _ = writeln!(out, "total_instruction_count: {}", t.instruction_count);
        let _ = writeln!(out, "branch_instruction_count: {}", t.branch_count());
        let _ = writeln!(out, "BT9_NODES");
        for (id, (ip, op)) in t.nodes.iter().enumerate() {
            let _ = writeln!(out, "NODE {id} {ip:#x} {}", opcode_mnemonic(*op));
        }
        let _ = writeln!(out, "BT9_EDGES");
        for (id, (node, taken, target, gap)) in t.edges.iter().enumerate() {
            let _ = writeln!(
                out,
                "EDGE {id} {node} {} {target:#x} {gap}",
                if *taken { 'T' } else { 'N' }
            );
        }
        let _ = writeln!(out, "BT9_EDGE_SEQUENCE");
        for e in &t.sequence {
            let _ = writeln!(out, "{e}");
        }
        let _ = writeln!(out, "EOF");
        out
    }

    /// Writes the BT9 text to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> Result<(), TraceError> {
        let mut f = File::create(path)?;
        f.write_all(self.to_text().as_bytes())?;
        Ok(())
    }
}

/// Parses BT9 text (raw or compressed source).
///
/// # Errors
///
/// Signature, structure and reference-validity errors, with 1-based line
/// numbers in [`TraceError::Invalid::position`].
pub fn parse<R: Read>(mut source: R) -> Result<Bt9Trace, TraceError> {
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    let data = if mbp_compress::detect(&data).is_some() {
        mbp_compress::decompress(&data)?
    } else {
        data
    };
    let text =
        std::str::from_utf8(&data).map_err(|_| TraceError::BadSignature { format: "BT9" })?;
    parse_text(text)
}

/// Opens and parses a BT9 trace file.
///
/// # Errors
///
/// Same as [`parse`].
pub fn open<P: AsRef<Path>>(path: P) -> Result<Bt9Trace, TraceError> {
    parse(File::open(path)?)
}

/// Parses BT9 text.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_text(text: &str) -> Result<Bt9Trace, TraceError> {
    parse_text_impl(text, true)
}

/// Parses only the graph header (headers, nodes and edges), returning the
/// trace with an empty sequence plus the raw sequence text. Lets streaming
/// consumers (like the CBP5-style framework) lex the sequence themselves.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the sequence marker is missing, plus the
/// header/node/edge errors of [`parse_text`].
pub fn parse_graph(text: &str) -> Result<(Bt9Trace, &str), TraceError> {
    const MARKER: &str = "BT9_EDGE_SEQUENCE";
    let at = text.find(MARKER).ok_or(TraceError::Truncated)?;
    let mut patched = String::with_capacity(at + 32);
    patched.push_str(&text[..at]);
    patched.push_str("BT9_EDGE_SEQUENCE\nEOF\n");
    let trace = parse_text_impl(&patched, false)?;
    Ok((trace, &text[at + MARKER.len()..]))
}

fn parse_text_impl(text: &str, enforce_counts: bool) -> Result<Bt9Trace, TraceError> {
    #[derive(PartialEq)]
    enum Section {
        Header,
        Nodes,
        Edges,
        Sequence,
        Done,
    }
    let mut section = Section::Header;
    let mut trace = Bt9Trace::default();
    let mut declared_branches = 0u64;
    let mut lines = text.lines().enumerate();

    let (_, first) = lines.next().ok_or(TraceError::Truncated)?;
    if first.trim() != SIGNATURE {
        return Err(TraceError::BadSignature { format: "BT9" });
    }

    for (idx, raw) in lines {
        let line_no = idx as u64 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "BT9_NODES" => {
                section = Section::Nodes;
                continue;
            }
            "BT9_EDGES" => {
                section = Section::Edges;
                continue;
            }
            "BT9_EDGE_SEQUENCE" => {
                section = Section::Sequence;
                continue;
            }
            "EOF" => {
                section = Section::Done;
                continue;
            }
            _ => {}
        }
        match section {
            Section::Header => {
                let (key, value) = line
                    .split_once(':')
                    .ok_or_else(|| TraceError::invalid("malformed header line", line_no))?;
                let value: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| TraceError::invalid("bad header number", line_no))?;
                match key.trim() {
                    "total_instruction_count" => trace.instruction_count = value,
                    "branch_instruction_count" => declared_branches = value,
                    _ => {} // Unknown header keys are ignored for forward compat.
                }
            }
            Section::Nodes => {
                let mut f = line.split_whitespace();
                if f.next() != Some("NODE") {
                    return Err(TraceError::invalid("expected NODE line", line_no));
                }
                let id: usize = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TraceError::invalid("bad node id", line_no))?;
                if id != trace.nodes.len() {
                    return Err(TraceError::invalid("non-sequential node id", line_no));
                }
                let ip = parse_hex(
                    f.next()
                        .ok_or_else(|| TraceError::invalid("missing node address", line_no))?,
                    line_no,
                )?;
                let op = parse_mnemonic(
                    f.next()
                        .ok_or_else(|| TraceError::invalid("missing node opcode", line_no))?,
                    line_no,
                )?;
                trace.nodes.push((ip, op));
            }
            Section::Edges => {
                let mut f = line.split_whitespace();
                if f.next() != Some("EDGE") {
                    return Err(TraceError::invalid("expected EDGE line", line_no));
                }
                let id: usize = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TraceError::invalid("bad edge id", line_no))?;
                if id != trace.edges.len() {
                    return Err(TraceError::invalid("non-sequential edge id", line_no));
                }
                let node: u32 = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TraceError::invalid("bad edge node", line_no))?;
                if node as usize >= trace.nodes.len() {
                    return Err(TraceError::invalid("edge references unknown node", line_no));
                }
                let taken = match f.next() {
                    Some("T") => true,
                    Some("N") => false,
                    _ => return Err(TraceError::invalid("bad edge outcome", line_no)),
                };
                let target = parse_hex(
                    f.next()
                        .ok_or_else(|| TraceError::invalid("missing edge target", line_no))?,
                    line_no,
                )?;
                let gap: u32 = f
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TraceError::invalid("bad edge inst count", line_no))?;
                trace.edges.push((node, taken, target, gap));
            }
            Section::Sequence => {
                let edge: u32 = line
                    .parse()
                    .map_err(|_| TraceError::invalid("bad sequence entry", line_no))?;
                if edge as usize >= trace.edges.len() {
                    return Err(TraceError::invalid(
                        "sequence references unknown edge",
                        line_no,
                    ));
                }
                trace.sequence.push(edge);
            }
            Section::Done => {
                return Err(TraceError::invalid("content after EOF", line_no));
            }
        }
    }
    if section != Section::Done {
        return Err(TraceError::Truncated);
    }
    if enforce_counts && declared_branches != trace.branch_count() {
        return Err(TraceError::invalid("branch count mismatch", 0));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<BranchRecord> {
        let cond = Opcode::conditional_direct();
        let call = Opcode::call();
        let ret = Opcode::ret();
        vec![
            BranchRecord::new(Branch::new(0x1000, 0x2000, cond, true), 3),
            BranchRecord::new(Branch::new(0x1000, 0x2000, cond, false), 3),
            BranchRecord::new(Branch::new(0x3000, 0x4000, call, true), 0),
            BranchRecord::new(Branch::new(0x4010, 0x3008, ret, true), 2),
            BranchRecord::new(Branch::new(0x1000, 0x2000, cond, true), 3),
        ]
    }

    #[test]
    fn text_roundtrip() {
        let mut w = Bt9Writer::new();
        for r in sample_records() {
            w.write_record(&r);
        }
        let text = w.to_text();
        let trace = parse_text(&text).unwrap();
        let back: Vec<_> = trace.records().collect();
        assert_eq!(back, sample_records());
        assert_eq!(trace.instruction_count, (5 + 3 + 3) + 2 + 3);
    }

    #[test]
    fn graph_is_deduplicated() {
        let mut w = Bt9Writer::new();
        for r in sample_records() {
            w.write_record(&r);
        }
        let t = w.finish();
        assert_eq!(t.nodes.len(), 3, "three static branches");
        assert_eq!(t.edges.len(), 4, "taken+not-taken for the loop branch");
        assert_eq!(t.sequence.len(), 5);
    }

    #[test]
    fn mnemonics_roundtrip() {
        for op in [
            Opcode::conditional_direct(),
            Opcode::unconditional_direct(),
            Opcode::call(),
            Opcode::ret(),
            Opcode::indirect_jump(),
            Opcode::new(true, true, BranchKind::Jump),
        ] {
            assert_eq!(parse_mnemonic(&opcode_mnemonic(op), 0).unwrap(), op);
        }
    }

    #[test]
    fn rejects_missing_signature() {
        assert!(matches!(
            parse_text("NOT_A_TRACE\nEOF\n"),
            Err(TraceError::BadSignature { format: "BT9" })
        ));
    }

    #[test]
    fn rejects_dangling_edge_reference() {
        let text = format!(
            "{SIGNATURE}\ntotal_instruction_count: 1\nbranch_instruction_count: 1\n\
             BT9_NODES\nNODE 0 0x10 JMP+DIR+CND\nBT9_EDGES\nEDGE 0 5 T 0x20 0\n\
             BT9_EDGE_SEQUENCE\n0\nEOF\n"
        );
        assert!(matches!(parse_text(&text), Err(TraceError::Invalid { .. })));
    }

    #[test]
    fn rejects_missing_eof() {
        let mut w = Bt9Writer::new();
        w.write_record(&sample_records()[0]);
        let text = w.to_text();
        let truncated = text.trim_end_matches("EOF\n");
        assert!(matches!(parse_text(truncated), Err(TraceError::Truncated)));
    }

    #[test]
    fn rejects_branch_count_mismatch() {
        let mut w = Bt9Writer::new();
        w.write_record(&sample_records()[0]);
        let text = w
            .to_text()
            .replace("branch_instruction_count: 1", "branch_instruction_count: 9");
        assert!(matches!(parse_text(&text), Err(TraceError::Invalid { .. })));
    }

    #[test]
    fn parses_compressed_source() {
        let mut w = Bt9Writer::new();
        for r in sample_records() {
            w.write_record(&r);
        }
        let text = w.to_text();
        let packed = mbp_compress::compress(text.as_bytes(), mbp_compress::Codec::Mgz, 6).unwrap();
        let trace = parse(&packed[..]).unwrap();
        assert_eq!(trace.branch_count(), 5);
    }
}
