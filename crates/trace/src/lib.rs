//! Branch trace formats for MBPlib.
//!
//! This crate implements the three trace formats the paper's evaluation
//! revolves around:
//!
//! * [`sbbt`] — MBPlib's *Simple Binary Branch Trace* (§IV-C, Figs. 1–2): a
//!   192-bit header followed by a stream of 128-bit branch packets. No
//!   branch-graph header; redundancy is left to the compression layer, so
//!   reading is a straight pointer walk with no hashed-structure lookups.
//! * [`bt9`] — a BT9-flavoured plain-text format as used by the CBP5
//!   framework: a node/edge graph describing the program's branches followed
//!   by the sequence of edges taken. Deliberately costly to parse, because
//!   the 18.4× result in Table III compares against exactly this design.
//! * [`champsim`] — a ChampSim-like binary format with one 64-byte record
//!   per *instruction* (not per branch), including register and memory
//!   operands; this is why Table I reports a 42× size reduction for DPC3.
//!
//! [`translate`] converts between them, reproducing MBPlib's trace
//! translation tooling. All readers transparently accept raw or
//! MGZ/MZST-compressed input via [`mbp_compress::DecompressReader`].
//!
//! # Examples
//!
//! ```
//! use mbp_trace::{Branch, BranchKind, BranchRecord, Opcode};
//! use mbp_trace::sbbt::{SbbtReader, SbbtWriter};
//!
//! let rec = BranchRecord::new(
//!     Branch::new(0x40_1000, 0x40_2000, Opcode::conditional_direct(), true),
//!     3, // instructions since the previous branch
//! );
//!
//! let mut w = SbbtWriter::new(Vec::new());
//! w.write_record(&rec)?;
//! let bytes = w.finish()?;
//!
//! let mut r = SbbtReader::from_bytes(bytes)?;
//! assert_eq!(r.header().branch_count, 1);
//! assert_eq!(r.next_record()?.unwrap(), rec);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
mod branch;
pub mod bt9;
pub(crate) mod bytes;
pub mod champsim;
mod error;
pub mod sbbt;
pub mod translate;

pub use batch::{BranchBatch, ColumnsMut};
pub use branch::{Branch, BranchKind, BranchRecord, Opcode};
pub use error::TraceError;

/// Maximum number of non-branch instructions between two consecutive
/// branches representable in an SBBT packet (12 bits, §IV-C).
pub const MAX_GAP: u32 = 4095;
