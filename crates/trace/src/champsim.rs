//! A ChampSim-like per-instruction binary trace format.
//!
//! ChampSim traces record *every* instruction — address, branch flags and
//! the architectural registers and memory operands it touches — because the
//! simulator models the whole core. That is why Table I reports the DPC3
//! set shrinking 42× when reduced to SBBT branch packets: this format pays
//! 64 bytes per instruction, SBBT pays 16 bytes per *branch*.
//!
//! Layout per record (64 bytes, little-endian, mirroring ChampSim's
//! `input_instr`):
//!
//! | field         | bytes |
//! |---------------|-------|
//! | `ip`          | 8     |
//! | `is_branch`   | 1     |
//! | `branch_taken`| 1     |
//! | `dest_regs`   | 2     |
//! | `src_regs`    | 4     |
//! | `dest_mem`    | 16    |
//! | `src_mem`     | 32    |
//!
//! Like the real format there is no explicit branch-type field; branch
//! semantics are conveyed through the register fields (ChampSim infers
//! call/return/indirect from reads and writes of the instruction pointer,
//! stack pointer and flags registers — we encode the same information in
//! `dest_regs[0]`, see [`BRANCH_INFO_FLAG`]).

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use crate::bytes::le_u64_at;
use crate::{Branch, BranchRecord, Opcode, TraceError};

/// Size of one encoded instruction record.
pub const RECORD_BYTES: usize = 64;

/// Marker bit set in `dest_regs[0]` of branch records; the low 4 bits carry
/// the [`Opcode`] encoding (the analogue of ChampSim inferring branch type
/// from architectural register usage).
pub const BRANCH_INFO_FLAG: u8 = 0x40;

/// One instruction as stored in a ChampSim-like trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChampsimRecord {
    /// Instruction virtual address.
    pub ip: u64,
    /// Whether this instruction is a branch.
    pub is_branch: bool,
    /// For branches: whether it was taken.
    pub branch_taken: bool,
    /// Destination architectural registers (0 = unused).
    pub dest_regs: [u8; 2],
    /// Source architectural registers (0 = unused).
    pub src_regs: [u8; 4],
    /// Store addresses (0 = none).
    pub dest_mem: [u64; 2],
    /// Load addresses (0 = none).
    pub src_mem: [u64; 4],
}

impl ChampsimRecord {
    /// Builds a branch record carrying `opcode` in the register fields.
    pub fn branch(ip: u64, opcode: Opcode, taken: bool) -> Self {
        Self {
            ip,
            is_branch: true,
            branch_taken: taken,
            dest_regs: [BRANCH_INFO_FLAG | opcode.bits(), 0],
            ..Self::default()
        }
    }

    /// Recovers the branch opcode if this record is a branch written by
    /// [`ChampsimRecord::branch`].
    pub fn branch_opcode(&self) -> Option<Opcode> {
        if self.is_branch && self.dest_regs[0] & BRANCH_INFO_FLAG != 0 {
            Opcode::from_bits(self.dest_regs[0] & 0xF)
        } else if self.is_branch {
            Some(Opcode::conditional_direct())
        } else {
            None
        }
    }

    /// Encodes to the 64-byte layout.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.ip.to_le_bytes());
        out[8] = self.is_branch as u8;
        out[9] = self.branch_taken as u8;
        out[10..12].copy_from_slice(&self.dest_regs);
        out[12..16].copy_from_slice(&self.src_regs);
        for (i, m) in self.dest_mem.iter().enumerate() {
            out[16 + 8 * i..24 + 8 * i].copy_from_slice(&m.to_le_bytes());
        }
        for (i, m) in self.src_mem.iter().enumerate() {
            out[32 + 8 * i..40 + 8 * i].copy_from_slice(&m.to_le_bytes());
        }
        out
    }

    /// Decodes the 64-byte layout. Every bit pattern is a valid record, so
    /// decoding is infallible (and, with the fixed-size input, panic-free).
    pub fn decode(bytes: &[u8; RECORD_BYTES]) -> Self {
        let mut rec = Self {
            ip: le_u64_at(bytes, 0).unwrap_or(0),
            is_branch: bytes[8] != 0,
            branch_taken: bytes[9] != 0,
            dest_regs: [bytes[10], bytes[11]],
            src_regs: [bytes[12], bytes[13], bytes[14], bytes[15]],
            ..Self::default()
        };
        for i in 0..2 {
            rec.dest_mem[i] = le_u64_at(bytes, 16 + 8 * i).unwrap_or(0);
        }
        for i in 0..4 {
            rec.src_mem[i] = le_u64_at(bytes, 32 + 8 * i).unwrap_or(0);
        }
        rec
    }
}

/// Deterministic synthetic operand generator for filler (non-branch)
/// instructions, so the cycle simulator's cache hierarchy sees a plausible
/// mix of streaming and scattered accesses.
#[derive(Clone, Debug)]
pub struct OperandSynth {
    counter: u64,
    /// Base of the synthetic data segment.
    data_base: u64,
}

impl OperandSynth {
    /// Creates a generator. `seed` offsets the data segment so different
    /// traces do not collide in caches.
    pub fn new(seed: u64) -> Self {
        Self {
            counter: 0,
            data_base: 0x5000_0000 + (seed << 24),
        }
    }

    /// Produces a filler instruction at `ip`.
    pub fn filler(&mut self, ip: u64) -> ChampsimRecord {
        let c = self.counter;
        self.counter += 1;
        let mut rec = ChampsimRecord {
            ip,
            // Dependences on ~1 in 3 instructions keep ILP high enough that
            // the backend can sustain several IPC; otherwise dependency
            // stalls would hide every branch-misprediction bubble.
            src_regs: [
                if c.is_multiple_of(3) {
                    1 + (c % 14) as u8
                } else {
                    0
                },
                0,
                0,
                0,
            ],
            dest_regs: [1 + ((c / 2) % 14) as u8, 0],
            ..ChampsimRecord::default()
        };
        // ~1 in 7 instructions load; mostly cache-friendly streaming with
        // an occasional scattered access.
        if c.is_multiple_of(7) {
            rec.src_mem[0] = if c.is_multiple_of(70) {
                self.data_base + (mbp_hash(c) % (1 << 22))
            } else {
                // Sequential 8-byte stream over a cache-resident window.
                self.data_base + ((c / 7) * 8) % (1 << 15)
            };
        }
        // ~1 in 11 instructions store.
        if c.is_multiple_of(11) {
            rec.dest_mem[0] = self.data_base + (1 << 22) + (c * 16) % (1 << 16);
        }
        rec
    }
}

fn mbp_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}

/// Writes a ChampSim-like trace, synthesizing filler instructions for the
/// gaps between branches.
#[derive(Debug)]
pub struct ChampsimWriter<W: Write> {
    sink: W,
    synth: OperandSynth,
    records: u64,
}

impl ChampsimWriter<BufWriter<File>> {
    /// Creates a trace file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> ChampsimWriter<W> {
    /// Creates a writer over any sink.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            synth: OperandSynth::new(0),
            records: 0,
        }
    }

    /// Writes one raw instruction record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_instr(&mut self, rec: &ChampsimRecord) -> Result<(), TraceError> {
        self.sink.write_all(&rec.encode())?;
        self.records += 1;
        Ok(())
    }

    /// Expands a branch record into `gap` synthetic filler instructions
    /// followed by the branch itself. Filler addresses fill the gap
    /// contiguously below the branch (4-byte instructions).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_branch_record(&mut self, rec: &BranchRecord) -> Result<(), TraceError> {
        let b = rec.branch;
        for k in 0..rec.gap as u64 {
            let ip = b.ip().wrapping_sub(4 * (rec.gap as u64 - k));
            let filler = self.synth.filler(ip);
            self.write_instr(&filler)?;
        }
        self.write_instr(&ChampsimRecord::branch(b.ip(), b.opcode(), b.is_taken()))
    }

    /// Instructions written so far.
    pub fn instruction_count(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a ChampSim-like trace (raw or compressed).
#[derive(Debug)]
pub struct ChampsimReader {
    data: Vec<u8>,
    pos: usize,
}

impl ChampsimReader {
    /// Opens a trace file, transparently decompressing it.
    ///
    /// # Errors
    ///
    /// I/O and decompression errors; rejects lengths that are not a whole
    /// number of records.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        Self::from_reader(File::open(path)?)
    }

    /// Reads a trace from any reader.
    ///
    /// # Errors
    ///
    /// Same as [`ChampsimReader::open`].
    pub fn from_reader<R: Read>(mut source: R) -> Result<Self, TraceError> {
        let mut data = Vec::new();
        source.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    /// Parses an in-memory trace (decompressing if needed).
    ///
    /// # Errors
    ///
    /// Decompression errors ([`TraceError::Decompress`]) and
    /// [`TraceError::Truncated`] if the length is not a whole number of
    /// 64-byte records.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, TraceError> {
        let data = if mbp_compress::detect(&data).is_some() {
            mbp_compress::decompress(&data)?
        } else {
            data
        };
        if data.len() % RECORD_BYTES != 0 {
            return Err(TraceError::Truncated);
        }
        Ok(Self { data, pos: 0 })
    }

    /// Total instructions in the trace.
    pub fn instruction_count(&self) -> u64 {
        (self.data.len() / RECORD_BYTES) as u64
    }

    /// Next instruction, or `None` at the end.
    pub fn next_instr(&mut self) -> Option<ChampsimRecord> {
        // The constructor proved the data is whole records, so the read is
        // always in bounds; a `None` here also covers the (unreachable)
        // partial-tail case instead of panicking.
        let bytes: &[u8; RECORD_BYTES] = self
            .data
            .get(self.pos..self.pos + RECORD_BYTES)
            .and_then(|s| s.first_chunk())?;
        self.pos += RECORD_BYTES;
        Some(ChampsimRecord::decode(bytes))
    }

    /// Reduces the trace to branch records: each branch becomes a
    /// [`BranchRecord`] whose gap is the number of preceding non-branch
    /// instructions and whose target is the next instruction's address when
    /// taken (ChampSim's own convention — targets are not stored).
    pub fn to_branch_records(mut self) -> Vec<BranchRecord> {
        let mut out: Vec<BranchRecord> = Vec::new();
        let mut gap = 0u32;
        let mut pending: Option<(u64, Opcode, bool)> = None;
        while let Some(rec) = self.next_instr() {
            if let Some((ip, op, taken)) = pending.take() {
                let target = if taken { rec.ip } else { 0 };
                out.push(BranchRecord::new(Branch::new(ip, target, op, taken), gap));
                gap = 0;
            }
            if rec.is_branch {
                let op = rec.branch_opcode().unwrap_or_default();
                pending = Some((rec.ip, op, rec.branch_taken));
            } else {
                gap = gap.saturating_add(1);
            }
        }
        if let Some((ip, op, taken)) = pending {
            out.push(BranchRecord::new(Branch::new(ip, 0, op, taken), gap));
        }
        out
    }
}

impl Iterator for ChampsimReader {
    type Item = ChampsimRecord;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchKind;

    #[test]
    fn record_roundtrip() {
        let rec = ChampsimRecord {
            ip: 0xDEAD_BEEF,
            is_branch: true,
            branch_taken: true,
            dest_regs: [3, 0],
            src_regs: [1, 2, 0, 0],
            dest_mem: [0x100, 0],
            src_mem: [0x200, 0x300, 0, 0],
        };
        assert_eq!(ChampsimRecord::decode(&rec.encode()), rec);
    }

    #[test]
    fn branch_opcode_carried() {
        for op in [
            Opcode::conditional_direct(),
            Opcode::call(),
            Opcode::ret(),
            Opcode::new(false, true, BranchKind::Jump),
        ] {
            let rec = ChampsimRecord::branch(0x1000, op, true);
            assert_eq!(rec.branch_opcode(), Some(op));
            let back = ChampsimRecord::decode(&rec.encode());
            assert_eq!(back.branch_opcode(), Some(op));
        }
        assert_eq!(ChampsimRecord::default().branch_opcode(), None);
    }

    #[test]
    fn writer_expands_gaps() {
        let mut w = ChampsimWriter::new(Vec::new());
        let rec = BranchRecord::new(
            Branch::new(0x1010, 0x2000, Opcode::conditional_direct(), true),
            3,
        );
        w.write_branch_record(&rec).unwrap();
        assert_eq!(w.instruction_count(), 4);
        let bytes = w.finish().unwrap();
        let mut r = ChampsimReader::from_reader(&bytes[..]).unwrap();
        assert_eq!(r.instruction_count(), 4);
        // Fillers sit contiguously below the branch.
        assert_eq!(r.next_instr().unwrap().ip, 0x1010 - 12);
        assert_eq!(r.next_instr().unwrap().ip, 0x1010 - 8);
        assert_eq!(r.next_instr().unwrap().ip, 0x1010 - 4);
        let b = r.next_instr().unwrap();
        assert!(b.is_branch);
        assert_eq!(b.ip, 0x1010);
    }

    #[test]
    fn branch_reduction_reconstructs_gaps_and_targets() {
        let mut w = ChampsimWriter::new(Vec::new());
        let recs = vec![
            BranchRecord::new(
                Branch::new(0x1010, 0x2000, Opcode::conditional_direct(), true),
                2,
            ),
            BranchRecord::new(
                Branch::new(0x2008, 0x3000, Opcode::conditional_direct(), false),
                1,
            ),
        ];
        for r in &recs {
            w.write_branch_record(r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = ChampsimReader::from_reader(&bytes[..])
            .unwrap()
            .to_branch_records();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].gap, 2);
        assert_eq!(back[0].branch.ip(), 0x1010);
        // Target inferred from the next instruction (first filler of rec 2).
        assert_eq!(back[0].branch.target(), 0x2008 - 4);
        assert!(back[0].branch.is_taken());
        assert_eq!(back[1].gap, 1);
        assert_eq!(back[1].branch.target(), 0, "not-taken has no stored target");
    }

    #[test]
    fn rejects_partial_record() {
        let err = ChampsimReader::from_reader(&[0u8; 70][..]).unwrap_err();
        assert!(matches!(err, TraceError::Truncated));
    }

    #[test]
    fn operand_synth_is_deterministic() {
        let mut a = OperandSynth::new(1);
        let mut b = OperandSynth::new(1);
        for i in 0..50 {
            assert_eq!(a.filler(i), b.filler(i));
        }
    }

    #[test]
    fn operand_synth_mixes_loads_and_stores() {
        let mut s = OperandSynth::new(0);
        let recs: Vec<_> = (0..100).map(|i| s.filler(i)).collect();
        let loads = recs.iter().filter(|r| r.src_mem[0] != 0).count();
        let stores = recs.iter().filter(|r| r.dest_mem[0] != 0).count();
        assert!((10..30).contains(&loads), "loads = {loads}");
        assert!((5..25).contains(&stores), "stores = {stores}");
    }
}
