//! Streaming SBBT reader.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::sbbt::header::{SbbtHeader, HEADER_BYTES};
use crate::sbbt::packet::{decode_packet, decode_packet_raw, PACKET_BYTES};
use crate::{BranchBatch, BranchRecord, TraceError};

/// Number of records decoded per [`SbbtReader::fill_batch`] call.
///
/// 2048 packets are 32 kB of trace, big enough to amortize per-call
/// overhead and small enough to stay cache-resident.
pub const BATCH_RECORDS: usize = 2048;

/// Reads SBBT traces, raw or MGZ/MZST-compressed.
///
/// The reader validates the header eagerly and then serves packets from a
/// flat in-memory buffer — the "stream-like format" walk that §VII-D credits
/// for most of MBPlib's speedup.
///
/// # Examples
///
/// ```no_run
/// use mbp_trace::sbbt::SbbtReader;
///
/// let mut r = SbbtReader::open("traces/SHORT_SERVER-1.sbbt.mzst")?;
/// while let Some(rec) = r.next_record()? {
///     println!("{:#x} taken={}", rec.branch.ip(), rec.branch.is_taken());
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SbbtReader {
    header: SbbtHeader,
    data: Vec<u8>,
    pos: usize,
}

impl SbbtReader {
    /// Opens a trace file, transparently decompressing it.
    ///
    /// # Errors
    ///
    /// I/O errors, decompression errors, and header validation errors.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        let file = File::open(path)?;
        Self::from_reader(file)
    }

    /// Reads a trace from any reader (decompressing if needed).
    ///
    /// # Errors
    ///
    /// Same as [`SbbtReader::open`].
    pub fn from_reader<R: Read>(mut source: R) -> Result<Self, TraceError> {
        // Slurp first, then decode in memory: decompression failures keep
        // their typed `CompressError` instead of being flattened into an
        // `io::Error` by a streaming adapter.
        let mut data = Vec::new();
        source.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    /// Parses an in-memory trace (decompressing if needed).
    ///
    /// # Errors
    ///
    /// Header validation errors; also rejects a body whose length is not a
    /// whole number of packets ([`TraceError::Truncated`]) or does not match
    /// the declared branch count ([`TraceError::Corrupt`]).
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, TraceError> {
        let data = if mbp_compress::detect(&data).is_some() {
            mbp_compress::decompress(&data)?
        } else {
            data
        };
        Self::from_decompressed(data)
    }

    /// Parses an in-memory trace known to be raw SBBT bytes, skipping the
    /// compression-codec probe of [`SbbtReader::from_bytes`].
    ///
    /// # Errors
    ///
    /// Same as [`SbbtReader::from_bytes`].
    pub fn from_decompressed(data: Vec<u8>) -> Result<Self, TraceError> {
        let header = SbbtHeader::decode(&data)?;
        let body_len = data.len() - HEADER_BYTES;
        if !body_len.is_multiple_of(PACKET_BYTES) {
            return Err(TraceError::Truncated);
        }
        // Cross-check the declared totals against the actual stream before
        // anything (here or downstream) sizes an allocation from them: a
        // corrupt 192-bit header must never translate into an OOM.
        let actual_branches = (body_len / PACKET_BYTES) as u64;
        if actual_branches != header.branch_count {
            return Err(TraceError::corrupt(
                "branch_count",
                header.branch_count,
                actual_branches,
            ));
        }
        // Every packet accounts for at least one instruction (the branch
        // itself), so a trustworthy header can never declare fewer
        // instructions than branches.
        if header.instruction_count < header.branch_count {
            return Err(TraceError::corrupt(
                "instruction_count",
                header.instruction_count,
                header.branch_count,
            ));
        }
        mbp_stats::pipeline()
            .trace
            .bytes_read
            .add(data.len() as u64);
        Ok(Self {
            header,
            data,
            pos: HEADER_BYTES,
        })
    }

    /// The validated file header.
    pub fn header(&self) -> &SbbtHeader {
        &self.header
    }

    /// Branches remaining to be read.
    pub fn remaining(&self) -> u64 {
        ((self.data.len() - self.pos) / PACKET_BYTES) as u64
    }

    /// Resets the reader to the first packet, so the same decoded buffer can
    /// be replayed without reopening (or re-decompressing) the trace.
    pub fn rewind(&mut self) {
        self.pos = HEADER_BYTES;
    }

    /// Decodes the next packet, or `None` at end of trace.
    ///
    /// # Errors
    ///
    /// [`TraceError::Invalid`] if the packet violates format rules.
    #[allow(clippy::should_implement_trait)]
    pub fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        // The constructor proved the body is whole packets, so this read is
        // always in bounds; fail soft instead of panicking regardless.
        let bytes: &[u8; PACKET_BYTES] = self
            .data
            .get(self.pos..self.pos + PACKET_BYTES)
            .and_then(|s| s.first_chunk())
            .ok_or(TraceError::Truncated)?;
        let rec = decode_packet(bytes, self.pos as u64)?;
        self.pos += PACKET_BYTES;
        Ok(Some(rec))
    }

    /// Decodes up to [`BATCH_RECORDS`](crate::sbbt::BATCH_RECORDS) packets
    /// into the columns of `out`, replacing its previous contents, and
    /// returns how many were decoded.
    ///
    /// This is the hot-path entry point of the simulator: one call amortizes
    /// the per-record bounds checks and virtual dispatch of
    /// [`SbbtReader::next_record`] over a whole block, and each packet field
    /// is written straight into its struct-of-arrays column without an
    /// intermediate [`BranchRecord`]. `out` is truncated, never re-zeroed,
    /// and keeps its column allocations between calls, so a caller looping
    /// `fill_batch` performs no allocation after the first block.
    ///
    /// A return value smaller than `BATCH_RECORDS` means the trace is
    /// exhausted; `0` means no records remain.
    ///
    /// # Errors
    ///
    /// [`TraceError::Invalid`] on the first malformed packet; `out` holds
    /// the records decoded before it.
    pub fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        // One span + two counter adds per 2048-packet block: the guard drop
        // also covers the error returns, so partially decoded batches are
        // still accounted for. The event span is journal-gated (off by
        // default) and closes on the same drops.
        let stats = &mbp_stats::pipeline().trace;
        let _span = stats.decode.span();
        let _event = mbp_stats::events::span(mbp_stats::events::EventName::TraceFillBatch);
        stats.batches.inc();
        let start = self.pos;
        let end = self.data.len().min(start + BATCH_RECORDS * PACKET_BYTES);
        let n = (end - start) / PACKET_BYTES;
        // Columns are resized once (a no-op at a steady batch size — no
        // per-push capacity checks, no re-zeroing of reused buffers) and
        // every packet field is written straight into its lane; the zips
        // over exact-length slices keep the loop free of bounds checks.
        let (pcs, targets, gaps, taken, ops) = out.resize_for_overwrite(n);
        let packets = self.data[start..end].chunks_exact(PACKET_BYTES);
        let lanes = pcs.iter_mut().zip(targets).zip(gaps).zip(taken).zip(ops);
        // The cursor is committed once per block (or set to the failing
        // packet), keeping the decode loop free of writes through `self`.
        let mut failed: Option<(usize, TraceError)> = None;
        for (i, (packet, ((((pc, target), gap), taken), op))) in packets.zip(lanes).enumerate() {
            let position = start + i * PACKET_BYTES;
            // `chunks_exact` only yields full packets; degrade to a typed
            // error rather than panicking if that invariant ever breaks.
            let Some(bytes) = packet.first_chunk::<PACKET_BYTES>() else {
                failed = Some((i, TraceError::Truncated));
                break;
            };
            match decode_packet_raw(bytes, position as u64) {
                Ok(p) => {
                    *pc = p.ip;
                    *target = p.target;
                    *gap = p.gap;
                    *taken = p.taken as u8;
                    *op = p.op_bits;
                }
                Err(e) => {
                    failed = Some((i, e));
                    break;
                }
            }
        }
        if let Some((i, e)) = failed {
            self.pos = start + i * PACKET_BYTES;
            // Drop the unwritten tail so the batch holds exactly the
            // packets decoded before the failure.
            out.truncate(i);
            stats.packets_decoded.add(i as u64);
            out.debug_assert_aligned();
            return Err(e);
        }
        self.pos = end;
        stats.packets_decoded.add(n as u64);
        out.debug_assert_aligned();
        Ok(n)
    }

    /// Reads every remaining record.
    ///
    /// # Errors
    ///
    /// Propagates the first packet error encountered.
    pub fn read_all(&mut self) -> Result<Vec<BranchRecord>, TraceError> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        let mut batch = BranchBatch::new();
        while self.fill_batch(&mut batch)? > 0 {
            batch.append_records_to(&mut out);
        }
        Ok(out)
    }
}

/// Iterates records, yielding `Err` once and then stopping on malformed
/// input.
impl Iterator for SbbtReader {
    type Item = Result<BranchRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.pos = self.data.len(); // stop iteration after an error
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbbt::SbbtWriter;
    use crate::{Branch, Opcode};

    fn sample_trace(n: usize) -> Vec<u8> {
        let mut w = SbbtWriter::new(Vec::new());
        for i in 0..n {
            let rec = BranchRecord::new(
                Branch::new(
                    0x1000 + 16 * i as u64,
                    0x9000,
                    Opcode::conditional_direct(),
                    i % 3 == 0,
                ),
                i as u32 % 7,
            );
            w.write_record(&rec).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn reads_back_header_and_records() {
        let bytes = sample_trace(10);
        let mut r = SbbtReader::from_bytes(bytes).unwrap();
        assert_eq!(r.header().branch_count, 10);
        assert_eq!(r.remaining(), 10);
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[3].branch.ip(), 0x1000 + 48);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn compressed_roundtrip() {
        use mbp_compress::{compress, Codec};
        let bytes = sample_trace(50);
        for codec in [Codec::Mgz, Codec::Mzst] {
            let packed = compress(&bytes, codec, 9).unwrap();
            let mut r = SbbtReader::from_bytes(packed).unwrap();
            assert_eq!(r.read_all().unwrap().len(), 50);
        }
    }

    #[test]
    fn rejects_partial_packet() {
        let mut bytes = sample_trace(3);
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            SbbtReader::from_bytes(bytes),
            Err(TraceError::Truncated)
        ));
    }

    #[test]
    fn rejects_count_mismatch() {
        let mut bytes = sample_trace(3);
        // Tamper with the branch count.
        bytes[16] = 99;
        assert!(matches!(
            SbbtReader::from_bytes(bytes),
            Err(TraceError::Corrupt {
                field: "branch_count",
                declared: 99,
                actual: 3,
            })
        ));
    }

    #[test]
    fn rejects_instruction_count_below_branch_count() {
        let mut bytes = sample_trace(3);
        // Zero the instruction count: three packets imply at least three
        // executed instructions, so the header is lying.
        for b in &mut bytes[8..16] {
            *b = 0;
        }
        assert!(matches!(
            SbbtReader::from_bytes(bytes),
            Err(TraceError::Corrupt {
                field: "instruction_count",
                declared: 0,
                actual: 3,
            })
        ));
    }

    #[test]
    fn huge_declared_counts_error_without_allocating() {
        // A corrupt header declaring u64::MAX records must be rejected by
        // the stream-length cross-check, never used to size a buffer.
        let mut bytes = sample_trace(3);
        for b in &mut bytes[16..24] {
            *b = 0xFF;
        }
        assert!(matches!(
            SbbtReader::from_bytes(bytes),
            Err(TraceError::Corrupt {
                field: "branch_count",
                declared: u64::MAX,
                ..
            })
        ));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut bytes = sample_trace(3);
        // Corrupt the second packet's reserved bits.
        let off = 24 + 16;
        bytes[off] |= 0b0111_0000;
        let r = SbbtReader::from_bytes(bytes).unwrap();
        let items: Vec<_> = r.collect();
        assert_eq!(items.len(), 2, "one good record, one error, then stop");
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
    }

    #[test]
    fn fill_batch_matches_next_record() {
        let n = BATCH_RECORDS + 100; // forces a full block plus a tail
        let bytes = sample_trace(n);
        let mut scalar = SbbtReader::from_bytes(bytes.clone()).unwrap();
        let mut batched = SbbtReader::from_bytes(bytes).unwrap();

        let mut via_batches = Vec::new();
        let mut buf = BranchBatch::new();
        loop {
            let got = batched.fill_batch(&mut buf).unwrap();
            if got == 0 {
                break;
            }
            assert!(got == BATCH_RECORDS || batched.remaining() == 0);
            buf.append_records_to(&mut via_batches);
        }

        let mut via_scalar = Vec::new();
        while let Some(rec) = scalar.next_record().unwrap() {
            via_scalar.push(rec);
        }
        assert_eq!(via_batches, via_scalar);
        assert_eq!(via_batches.len(), n);
    }

    #[test]
    fn rewind_replays_from_the_start() {
        let mut r = SbbtReader::from_bytes(sample_trace(7)).unwrap();
        let first = r.read_all().unwrap();
        assert_eq!(r.remaining(), 0);
        r.rewind();
        assert_eq!(r.remaining(), 7);
        assert_eq!(r.read_all().unwrap(), first);
    }

    #[test]
    fn fill_batch_replaces_buffer_contents() {
        let mut r = SbbtReader::from_bytes(sample_trace(3)).unwrap();
        let mut buf = BranchBatch::new();
        assert_eq!(r.fill_batch(&mut buf).unwrap(), 3);
        assert_eq!(r.fill_batch(&mut buf).unwrap(), 0);
        assert!(buf.is_empty(), "exhausted fill clears the buffer");
    }

    #[test]
    fn fill_batch_decodes_columns() {
        let mut r = SbbtReader::from_bytes(sample_trace(5)).unwrap();
        let mut buf = BranchBatch::new();
        assert_eq!(r.fill_batch(&mut buf).unwrap(), 5);
        buf.debug_assert_aligned();
        assert_eq!(buf.pcs()[3], 0x1000 + 48);
        assert_eq!(buf.gaps()[4], 4);
        assert_eq!(buf.taken()[0], 1); // i % 3 == 0 at i = 0
        assert_eq!(buf.taken()[1], 0);
        assert!(buf.is_conditional(2));
    }

    #[test]
    fn fill_batch_surfaces_packet_errors() {
        let mut bytes = sample_trace(5);
        let off = 24 + 2 * 16;
        bytes[off] |= 0b0111_0000; // corrupt third packet's reserved bits
        let mut r = SbbtReader::from_bytes(bytes).unwrap();
        let mut buf = BranchBatch::new();
        assert!(r.fill_batch(&mut buf).is_err());
        assert_eq!(buf.len(), 2, "records before the error are kept");
    }

    #[test]
    fn from_decompressed_rejects_compressed_payload() {
        use mbp_compress::{compress, Codec};
        let packed = compress(&sample_trace(4), Codec::Mzst, 3).unwrap();
        assert!(SbbtReader::from_decompressed(packed).is_err());
    }

    #[test]
    fn empty_trace() {
        let w = SbbtWriter::new(Vec::new());
        let bytes = w.finish().unwrap();
        let mut r = SbbtReader::from_bytes(bytes).unwrap();
        assert_eq!(r.header().branch_count, 0);
        assert!(r.next_record().unwrap().is_none());
    }
}
