//! The *Simple Binary Branch Trace* (SBBT) format, version 1.0.0 (§IV-C).
//!
//! An SBBT file is a 24-byte header ([`SbbtHeader`], Fig. 1) followed by a
//! concatenation of 128-bit branch packets (Fig. 2). There is no branch
//! graph: each packet is self-contained, which costs redundancy (recovered
//! by compression) but lets the reader stream packets without consulting a
//! hashed metadata structure — the design decision behind most of MBPlib's
//! speedup over the CBP5 framework (§VII-D).

mod header;
mod packet;
mod reader;
mod writer;

pub use header::{SbbtHeader, SBBT_SIGNATURE, SBBT_VERSION};
pub use packet::{decode_packet, encode_packet, PACKET_BYTES};
pub use reader::{SbbtReader, BATCH_RECORDS};
pub use writer::{SbbtWriter, StreamingSbbtWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Branch, BranchKind, BranchRecord, Opcode};
    use mbp_utils::Xorshift64;

    /// Golden-bytes pin of Fig. 2: any change to the packet layout breaks
    /// this test, guarding on-disk compatibility.
    #[test]
    fn packet_golden_bytes() {
        let rec = BranchRecord::new(
            Branch::new(0x40_1000, 0x40_2000, Opcode::conditional_direct(), true),
            5,
        );
        let bytes = encode_packet(&rec).unwrap();
        assert_eq!(bytes.to_vec(), hex("01080001040000000500000204000000"),);
    }

    /// Golden-bytes pin of Fig. 1 (the 192-bit header).
    #[test]
    fn header_golden_bytes() {
        let h = SbbtHeader::new(1000, 42);
        assert_eq!(
            h.encode().to_vec(),
            hex("534242540a010000e8030000000000002a00000000000000"),
        );
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// Arbitrary *valid* records (SBBT validity rules + field widths),
    /// drawn from a deterministic stream — the offline stand-in for
    /// proptest.
    fn arb_record(rng: &mut Xorshift64) -> BranchRecord {
        let kind = match rng.below(3) {
            0 => BranchKind::Jump,
            1 => BranchKind::Call,
            _ => BranchKind::Ret,
        };
        let op = Opcode::new(rng.next_bool(), rng.next_bool(), kind);
        let ip = rng.below(1 << 51);
        let mut target = rng.below(1 << 51);
        let taken = rng.next_bool() || !op.is_conditional();
        if op.is_conditional() && op.is_indirect() && !taken {
            target = 0;
        }
        let gap = rng.below(4096) as u32;
        BranchRecord::new(Branch::new(ip, target, op, taken), gap)
    }

    #[test]
    fn stream_roundtrip() {
        let mut rng = Xorshift64::new(0x5bb7_0001);
        for _ in 0..64 {
            let n = rng.below(200) as usize;
            let records: Vec<BranchRecord> = (0..n).map(|_| arb_record(&mut rng)).collect();

            let mut w = SbbtWriter::new(Vec::new());
            for r in &records {
                w.write_record(r).unwrap();
            }
            let bytes = w.finish().unwrap();
            assert_eq!(bytes.len(), 24 + 16 * records.len());

            let mut r = SbbtReader::from_bytes(bytes).unwrap();
            assert_eq!(r.header().branch_count, records.len() as u64);
            let mut back = Vec::new();
            while let Some(rec) = r.next_record().unwrap() {
                back.push(rec);
            }
            assert_eq!(back, records);
        }
    }
}
