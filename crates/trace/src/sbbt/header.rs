//! The 192-bit SBBT header (Fig. 1).

use crate::TraceError;

/// The 5-byte signature opening every SBBT file: `"SBBT\n"`.
pub const SBBT_SIGNATURE: [u8; 5] = *b"SBBT\n";

/// Format version implemented by this crate: 1.0.0.
pub const SBBT_VERSION: (u8, u8, u8) = (1, 0, 0);

/// Size of the encoded header in bytes (192 bits).
pub(crate) const HEADER_BYTES: usize = 24;

/// The SBBT file header: signature, semantic version, and the two trace
/// totals.
///
/// # Examples
///
/// ```
/// use mbp_trace::sbbt::SbbtHeader;
///
/// let h = SbbtHeader::new(1_000_000, 180_000);
/// let bytes = h.encode();
/// assert_eq!(&bytes[..5], b"SBBT\n");
/// assert_eq!(SbbtHeader::decode(&bytes)?, h);
/// # Ok::<(), mbp_trace::TraceError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SbbtHeader {
    /// Instructions (branch and non-branch) executed while tracing.
    pub instruction_count: u64,
    /// Number of branch packets in the trace.
    pub branch_count: u64,
}

impl SbbtHeader {
    /// Creates a header with the given totals.
    pub fn new(instruction_count: u64, branch_count: u64) -> Self {
        Self {
            instruction_count,
            branch_count,
        }
    }

    /// Encodes to the 24-byte on-disk layout: signature, (major, minor,
    /// patch) as three `u8`, then both counts as little-endian `u64`.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[..5].copy_from_slice(&SBBT_SIGNATURE);
        out[5] = SBBT_VERSION.0;
        out[6] = SBBT_VERSION.1;
        out[7] = SBBT_VERSION.2;
        out[8..16].copy_from_slice(&self.instruction_count.to_le_bytes());
        out[16..24].copy_from_slice(&self.branch_count.to_le_bytes());
        out
    }

    /// Decodes and validates a header.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] if fewer than 24 bytes are available,
    /// [`TraceError::BadSignature`] on a wrong magic, and
    /// [`TraceError::UnsupportedVersion`] if the major version is not 1.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        if bytes.len() < HEADER_BYTES {
            return Err(TraceError::Truncated);
        }
        if bytes[..5] != SBBT_SIGNATURE {
            return Err(TraceError::BadSignature { format: "SBBT" });
        }
        let version = (bytes[5], bytes[6], bytes[7]);
        if version.0 != SBBT_VERSION.0 {
            return Err(TraceError::UnsupportedVersion { version });
        }
        // The length check above guarantees both reads; `le_u64_at` still
        // degrades to `Truncated` rather than panicking if it ever changes.
        Ok(Self {
            instruction_count: crate::bytes::le_u64_at(bytes, 8).ok_or(TraceError::Truncated)?,
            branch_count: crate::bytes::le_u64_at(bytes, 16).ok_or(TraceError::Truncated)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_layout() {
        let h = SbbtHeader::new(0x0102_0304_0506_0708, 0x1122_3344);
        let b = h.encode();
        assert_eq!(&b[..5], b"SBBT\n");
        assert_eq!(&b[5..8], &[1, 0, 0]);
        assert_eq!(b[8], 0x08, "little endian");
        assert_eq!(b[15], 0x01);
        assert_eq!(b[16], 0x44);
    }

    #[test]
    fn decode_rejects_bad_signature() {
        let mut b = SbbtHeader::new(1, 1).encode();
        b[0] = b'X';
        assert!(matches!(
            SbbtHeader::decode(&b),
            Err(TraceError::BadSignature { format: "SBBT" })
        ));
    }

    #[test]
    fn decode_rejects_future_major_version() {
        let mut b = SbbtHeader::new(1, 1).encode();
        b[5] = 2;
        assert!(matches!(
            SbbtHeader::decode(&b),
            Err(TraceError::UnsupportedVersion { version: (2, 0, 0) })
        ));
    }

    #[test]
    fn decode_accepts_newer_minor_version() {
        let mut b = SbbtHeader::new(1, 1).encode();
        b[6] = 9;
        assert!(SbbtHeader::decode(&b).is_ok());
    }

    #[test]
    fn decode_rejects_truncation() {
        let b = SbbtHeader::new(1, 1).encode();
        assert!(matches!(
            SbbtHeader::decode(&b[..23]),
            Err(TraceError::Truncated)
        ));
    }
}
