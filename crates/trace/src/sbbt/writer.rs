//! SBBT writer.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use mbp_compress::{Codec, CompressWriter};

use crate::sbbt::header::SbbtHeader;
use crate::sbbt::packet::encode_packet;
use crate::{BranchRecord, TraceError};

/// Writes SBBT traces.
///
/// Packets are buffered in memory because the header (written first on
/// disk) carries the final instruction and branch totals, which are only
/// known once the stream ends.
///
/// # Examples
///
/// ```
/// use mbp_trace::sbbt::SbbtWriter;
/// use mbp_trace::{Branch, BranchRecord, Opcode};
///
/// let mut w = SbbtWriter::new(Vec::new());
/// let rec = BranchRecord::new(
///     Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
///     4,
/// );
/// w.write_record(&rec)?;
/// let bytes = w.finish()?;
/// assert_eq!(bytes.len(), 24 + 16);
/// # Ok::<(), mbp_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct SbbtWriter<W: Write> {
    sink: W,
    body: Vec<u8>,
    branch_count: u64,
    instruction_count: u64,
}

impl SbbtWriter<BufWriter<File>> {
    /// Creates a writer for an uncompressed trace file.
    ///
    /// # Errors
    ///
    /// I/O errors creating the file.
    pub fn create<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        Ok(SbbtWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> SbbtWriter<W> {
    /// Creates a writer over any sink.
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            body: Vec::new(),
            branch_count: 0,
            instruction_count: 0,
        }
    }

    /// Creates a *streaming* writer for a trace whose totals are known up
    /// front (e.g. a translation of an existing trace): the header is
    /// written immediately and packets go straight to the sink, so
    /// arbitrarily long traces need no buffering.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors. [`finish`](SbbtWriter::finish) will
    /// return [`TraceError::Unencodable`] if the written records do not
    /// match the promised `branch_count`.
    pub fn with_known_counts(
        mut sink: W,
        instruction_count: u64,
        branch_count: u64,
    ) -> Result<StreamingSbbtWriter<W>, TraceError> {
        let header = SbbtHeader::new(instruction_count, branch_count);
        sink.write_all(&header.encode())?;
        Ok(StreamingSbbtWriter {
            sink,
            promised_branches: branch_count,
            written: 0,
        })
    }

    /// Appends one branch record.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unencodable`] for records that do not fit the format.
    pub fn write_record(&mut self, rec: &BranchRecord) -> Result<(), TraceError> {
        let packet = encode_packet(rec)?;
        self.body.extend_from_slice(&packet);
        self.branch_count += 1;
        self.instruction_count += rec.instructions();
        Ok(())
    }

    /// Branches written so far.
    pub fn branch_count(&self) -> u64 {
        self.branch_count
    }

    /// Instructions accounted for so far (gaps plus branches).
    pub fn instruction_count(&self) -> u64 {
        self.instruction_count
    }

    /// Adds trailing instructions executed after the last branch to the
    /// header's instruction total.
    pub fn add_trailing_instructions(&mut self, count: u64) {
        self.instruction_count += count;
    }

    /// Writes header and body to the sink and returns it.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        let header = SbbtHeader::new(self.instruction_count, self.branch_count);
        self.sink.write_all(&header.encode())?;
        self.sink.write_all(&self.body)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl SbbtWriter<CompressWriter<BufWriter<File>>> {
    /// Creates a writer that compresses the finished trace with `codec` at
    /// `level` and writes it to `path`.
    ///
    /// # Errors
    ///
    /// I/O errors creating the file; level validation errors.
    pub fn create_compressed<P: AsRef<Path>>(
        path: P,
        codec: Codec,
        level: u32,
    ) -> Result<Self, TraceError> {
        let file = BufWriter::new(File::create(path)?);
        let sink = CompressWriter::new(file, codec, level)?;
        Ok(SbbtWriter::new(sink))
    }

    /// Finishes the trace and completes the compression stream.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish_compressed(self) -> Result<(), TraceError> {
        let compressor = self.finish()?;
        compressor.finish()?;
        Ok(())
    }
}

/// The unbuffered writer created by [`SbbtWriter::with_known_counts`].
#[derive(Debug)]
pub struct StreamingSbbtWriter<W: Write> {
    sink: W,
    promised_branches: u64,
    written: u64,
}

impl<W: Write> StreamingSbbtWriter<W> {
    /// Writes one record straight to the sink.
    ///
    /// # Errors
    ///
    /// Encoding errors, sink I/O errors, or exceeding the promised count.
    pub fn write_record(&mut self, rec: &BranchRecord) -> Result<(), TraceError> {
        if self.written == self.promised_branches {
            return Err(TraceError::Unencodable(format!(
                "trace promised {} branches in its header",
                self.promised_branches
            )));
        }
        let packet = encode_packet(rec)?;
        self.sink.write_all(&packet)?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and returns the sink, verifying the promised branch count.
    ///
    /// # Errors
    ///
    /// [`TraceError::Unencodable`] on a count mismatch; sink I/O errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.written != self.promised_branches {
            return Err(TraceError::Unencodable(format!(
                "header promised {} branches but {} were written",
                self.promised_branches, self.written
            )));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Branch, Opcode};

    #[test]
    fn counts_instructions() {
        let mut w = SbbtWriter::new(Vec::new());
        for gap in [3u32, 0, 10] {
            w.write_record(&BranchRecord::new(
                Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
                gap,
            ))
            .unwrap();
        }
        w.add_trailing_instructions(5);
        assert_eq!(w.branch_count(), 3);
        // 3 + 0 + 10 gaps + 3 branches + 5 trailing.
        assert_eq!(w.instruction_count(), 21);
        let bytes = w.finish().unwrap();
        let header = SbbtHeader::decode(&bytes).unwrap();
        assert_eq!(header.instruction_count, 21);
        assert_eq!(header.branch_count, 3);
    }

    #[test]
    fn streaming_writer_roundtrips() {
        let rec = BranchRecord::new(
            Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
            3,
        );
        let mut w = SbbtWriter::with_known_counts(Vec::new(), 8, 2).unwrap();
        w.write_record(&rec).unwrap();
        w.write_record(&rec).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = crate::sbbt::SbbtReader::from_bytes(bytes).unwrap();
        assert_eq!(r.header().instruction_count, 8);
        assert_eq!(r.read_all().unwrap(), vec![rec, rec]);
    }

    #[test]
    fn streaming_writer_enforces_promised_count() {
        let rec = BranchRecord::new(
            Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
            3,
        );
        // Too many.
        let mut w = SbbtWriter::with_known_counts(Vec::new(), 8, 1).unwrap();
        w.write_record(&rec).unwrap();
        assert!(w.write_record(&rec).is_err());
        // Too few.
        let w = SbbtWriter::with_known_counts(Vec::new(), 8, 2).unwrap();
        assert!(matches!(w.finish(), Err(TraceError::Unencodable(_))));
    }

    #[test]
    fn unencodable_record_does_not_corrupt_stream() {
        let mut w = SbbtWriter::new(Vec::new());
        let bad = BranchRecord::new(
            Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), true),
            9999,
        );
        assert!(w.write_record(&bad).is_err());
        assert_eq!(w.branch_count(), 0);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24, "header only");
    }
}
