//! The 128-bit SBBT branch packet (Fig. 2).
//!
//! Each packet is two little-endian 64-bit blocks:
//!
//! * Block 1: bits 63..12 the branch virtual address (52 bits); bits 3..0
//!   the opcode; bits 10..4 reserved; bit 11 the outcome.
//! * Block 2: bits 63..12 the target virtual address; bits 11..0 the number
//!   of instructions executed since the previous branch.
//!
//! Addresses store the 52 architecturally significant bits and are recovered
//! with an *arithmetic* 12-bit shift, which sign-extends kernel-half
//! canonical addresses on x86-64/ARMv8.

use crate::{Branch, BranchRecord, Opcode, TraceError, MAX_GAP};

/// Size of an encoded packet in bytes (128 bits).
pub const PACKET_BYTES: usize = 16;

const OUTCOME_BIT: u64 = 1 << 11;
const RESERVED_MASK: u64 = 0b0111_1111_0000;

/// Whether a 64-bit virtual address survives the 52-bit packet encoding,
/// i.e. its top 13 bits are a sign extension of bit 51.
fn address_encodable(addr: u64) -> bool {
    let shifted = ((addr << 12) as i64 >> 12) as u64;
    shifted == addr
}

/// Encodes a record into a 16-byte SBBT packet.
///
/// # Errors
///
/// [`TraceError::Unencodable`] if the gap exceeds [`MAX_GAP`], an address
/// does not fit the 52-bit encoding, or the record violates the §IV-C
/// validity rules.
pub fn encode_packet(rec: &BranchRecord) -> Result<[u8; PACKET_BYTES], TraceError> {
    let b = rec.branch;
    if rec.gap > MAX_GAP {
        return Err(TraceError::Unencodable(format!(
            "gap {} exceeds the 12-bit maximum {MAX_GAP}",
            rec.gap
        )));
    }
    if !address_encodable(b.ip()) || !address_encodable(b.target()) {
        return Err(TraceError::Unencodable(format!(
            "address {:#x}/{:#x} outside the 52-bit canonical range",
            b.ip(),
            b.target()
        )));
    }
    if !b.is_valid() {
        return Err(TraceError::Unencodable(
            "record violates SBBT validity rules".to_owned(),
        ));
    }
    let block1 =
        (b.ip() << 12) | (b.opcode().bits() as u64) | if b.is_taken() { OUTCOME_BIT } else { 0 };
    let block2 = (b.target() << 12) | rec.gap as u64;
    let mut out = [0u8; PACKET_BYTES];
    out[..8].copy_from_slice(&block1.to_le_bytes());
    out[8..].copy_from_slice(&block2.to_le_bytes());
    Ok(out)
}

/// Decodes a 16-byte SBBT packet.
///
/// # Errors
///
/// [`TraceError::Invalid`] (at byte `position`) if the opcode uses the
/// reserved kind, reserved bits are set, or the validity rules are violated.
pub fn decode_packet(
    bytes: &[u8; PACKET_BYTES],
    position: u64,
) -> Result<BranchRecord, TraceError> {
    let (block1, block2) = crate::bytes::split_u64_pair(bytes);

    if block1 & RESERVED_MASK != 0 {
        return Err(TraceError::invalid("reserved opcode bits set", position));
    }
    let opcode = Opcode::from_bits((block1 & 0xF) as u8)
        .ok_or_else(|| TraceError::invalid("reserved branch kind", position))?;
    let taken = block1 & OUTCOME_BIT != 0;
    let ip = ((block1 as i64) >> 12) as u64;
    let target = ((block2 as i64) >> 12) as u64;
    let gap = (block2 & 0xFFF) as u32;

    let branch = Branch::new(ip, target, opcode, taken);
    if !branch.is_valid() {
        return Err(TraceError::invalid(
            "packet violates outcome/target validity rules",
            position,
        ));
    }
    Ok(BranchRecord::new(branch, gap))
}

/// A decoded packet's fields in column form: the 4-bit opcode encoding is
/// kept as raw bits so the block decoder can write it straight into a
/// [`BranchBatch`](crate::BranchBatch) `ops` column without constructing an
/// [`Opcode`].
pub(crate) struct RawPacket {
    pub ip: u64,
    pub target: u64,
    pub gap: u32,
    pub taken: bool,
    /// Validated 4-bit SBBT opcode encoding (never the reserved patterns).
    pub op_bits: u8,
}

/// Block-decode variant of [`decode_packet`] for the `fill_batch` hot loop.
///
/// Semantically identical — same accepted packets, same rejected packets,
/// same error kinds and positions (`decoders_agree_on_every_bit_pattern`
/// pins this) — but folds every format rule into one branch-free predicate
/// so the per-packet cost inside a block is a handful of ALU ops. The
/// one-at-a-time [`decode_packet`] stays on `Opcode::from_bits` and
/// `Branch::is_valid`, the canonical statements of the format rules.
pub(crate) fn decode_packet_raw(
    bytes: &[u8; PACKET_BYTES],
    position: u64,
) -> Result<RawPacket, TraceError> {
    let (block1, block2) = crate::bytes::split_u64_pair(bytes);

    let conditional = block1 & 0b01 != 0;
    let indirect = block1 & 0b10 != 0;
    let taken = block1 & OUTCOME_BIT != 0;
    let target = ((block2 as i64) >> 12) as u64;

    // Reserved bits clear, kind not the reserved `11` pattern, and the
    // §IV-C outcome/target validity rules. The non-short-circuiting `|`
    // keeps the combined test a single well-predicted branch.
    let malformed = (block1 & RESERVED_MASK != 0)
        | (block1 & 0b1100 == 0b1100)
        | (!conditional & !taken)
        | (conditional & indirect & !taken & (target != 0));
    if malformed {
        return Err(malformed_error(block1, position));
    }

    Ok(RawPacket {
        ip: ((block1 as i64) >> 12) as u64,
        target,
        gap: (block2 & 0xFFF) as u32,
        taken,
        op_bits: (block1 & 0xF) as u8,
    })
}

/// [`decode_packet_raw`] reassembled into a [`BranchRecord`] — used by the
/// decoder-agreement tests and any caller that wants fast validation with
/// the struct representation.
#[cfg(test)]
pub(crate) fn decode_packet_fast(
    bytes: &[u8; PACKET_BYTES],
    position: u64,
) -> Result<BranchRecord, TraceError> {
    let p = decode_packet_raw(bytes, position)?;
    let kind = match (p.op_bits >> 2) & 0b11 {
        0b00 => crate::BranchKind::Jump,
        0b01 => crate::BranchKind::Ret,
        _ => crate::BranchKind::Call, // `11` was rejected by the raw decoder
    };
    let opcode = Opcode::new(p.op_bits & 0b01 != 0, p.op_bits & 0b10 != 0, kind);
    Ok(BranchRecord::new(
        Branch::new(p.ip, p.target, opcode, p.taken),
        p.gap,
    ))
}

/// Picks the error for a packet that failed the combined format test,
/// mirroring the order [`decode_packet`] applies its checks.
#[cold]
fn malformed_error(block1: u64, position: u64) -> TraceError {
    if block1 & RESERVED_MASK != 0 {
        return TraceError::invalid("reserved opcode bits set", position);
    }
    if block1 & 0b1100 == 0b1100 {
        return TraceError::invalid("reserved branch kind", position);
    }
    TraceError::invalid("packet violates outcome/target validity rules", position)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchKind;

    fn rec(ip: u64, target: u64, op: Opcode, taken: bool, gap: u32) -> BranchRecord {
        BranchRecord::new(Branch::new(ip, target, op, taken), gap)
    }

    #[test]
    fn roundtrip_simple() {
        let r = rec(0x40_1000, 0x40_2000, Opcode::conditional_direct(), true, 7);
        let bytes = encode_packet(&r).unwrap();
        assert_eq!(decode_packet(&bytes, 0).unwrap(), r);
    }

    #[test]
    fn layout_matches_figure2() {
        let r = rec(0x1000, 0x2000, Opcode::conditional_direct(), true, 5);
        let bytes = encode_packet(&r).unwrap();
        let block1 = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let block2 = u64::from_le_bytes(bytes[8..].try_into().unwrap());
        assert_eq!(block1 >> 12, 0x1000, "ip in top 52 bits");
        assert_eq!(block1 & 0xF, 0b0001, "conditional direct jump opcode");
        assert_eq!(block1 >> 11 & 1, 1, "outcome bit");
        assert_eq!(block2 >> 12, 0x2000, "target in top 52 bits");
        assert_eq!(block2 & 0xFFF, 5, "gap in low 12 bits");
    }

    #[test]
    fn kernel_half_addresses_sign_extend() {
        // A canonical kernel-space address: top bits all ones.
        let ip = 0xFFFF_FFFF_FFE0_1230u64;
        let r = rec(ip, ip + 16, Opcode::unconditional_direct(), true, 0);
        let bytes = encode_packet(&r).unwrap();
        let back = decode_packet(&bytes, 0).unwrap();
        assert_eq!(back.branch.ip(), ip);
        assert_eq!(back.branch.target(), ip + 16);
    }

    #[test]
    fn non_canonical_address_rejected() {
        // Bit 52 set but not sign-extended: unencodable in 52 bits.
        let r = rec(1 << 52, 0, Opcode::unconditional_direct(), true, 0);
        assert!(matches!(encode_packet(&r), Err(TraceError::Unencodable(_))));
    }

    #[test]
    fn oversized_gap_rejected() {
        let r = rec(0x1000, 0x2000, Opcode::conditional_direct(), true, 4096);
        assert!(matches!(encode_packet(&r), Err(TraceError::Unencodable(_))));
    }

    #[test]
    fn max_gap_accepted() {
        let r = rec(0x1000, 0x2000, Opcode::conditional_direct(), false, 4095);
        let bytes = encode_packet(&r).unwrap();
        assert_eq!(decode_packet(&bytes, 0).unwrap().gap, 4095);
    }

    #[test]
    fn invalid_records_rejected_on_encode() {
        // Non-conditional not-taken.
        let r = rec(0x1000, 0x2000, Opcode::unconditional_direct(), false, 0);
        assert!(encode_packet(&r).is_err());
        // Conditional indirect not-taken with non-null target.
        let op = Opcode::new(true, true, BranchKind::Jump);
        let r = rec(0x1000, 0x2000, op, false, 0);
        assert!(encode_packet(&r).is_err());
    }

    #[test]
    fn invalid_packets_rejected_on_decode() {
        // Craft a packet with reserved bits set.
        let r = rec(0x1000, 0x2000, Opcode::conditional_direct(), true, 0);
        let mut bytes = encode_packet(&r).unwrap();
        bytes[0] |= 0b0001_0000; // reserved bit 4
        assert!(matches!(
            decode_packet(&bytes, 160),
            Err(TraceError::Invalid { position: 160, .. })
        ));

        // Craft a packet with the reserved kind bits (11).
        let mut bytes = encode_packet(&r).unwrap();
        bytes[0] |= 0b0000_1100;
        assert!(decode_packet(&bytes, 0).is_err());

        // Unconditional + not-taken violates rule 1.
        let mut bytes = encode_packet(&r).unwrap();
        bytes[0] &= !1; // clear conditional bit
        bytes[1] &= !(1 << 3); // clear outcome bit (bit 11 of block1)
        assert!(decode_packet(&bytes, 0).is_err());
    }

    #[test]
    fn decoders_agree_on_every_bit_pattern() {
        // Sweep the full format-rule space: every opcode nibble, outcome
        // bit, each reserved bit, and null/non-null targets. The fast
        // block decoder must accept, reject, and report positions exactly
        // like the canonical one.
        for low_bits in 0u64..4096 {
            for target in [0u64, 0x40_2000] {
                let block1 = (0x40_1000u64 << 12) | low_bits;
                let block2 = (target << 12) | 17;
                let mut bytes = [0u8; PACKET_BYTES];
                bytes[..8].copy_from_slice(&block1.to_le_bytes());
                bytes[8..].copy_from_slice(&block2.to_le_bytes());
                let canonical = decode_packet(&bytes, 4242);
                let fast = decode_packet_fast(&bytes, 4242);
                match (&canonical, &fast) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "block1 {block1:#x}"),
                    (Err(a), Err(b)) => {
                        assert_eq!(format!("{a:?}"), format!("{b:?}"), "block1 {block1:#x}")
                    }
                    _ => {
                        panic!("decoders disagree on block1 {block1:#x}: {canonical:?} vs {fast:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn all_kinds_roundtrip() {
        for op in [
            Opcode::conditional_direct(),
            Opcode::unconditional_direct(),
            Opcode::call(),
            Opcode::ret(),
            Opcode::indirect_jump(),
            Opcode::new(true, true, BranchKind::Jump),
        ] {
            let r = rec(0xABC_DEF0, 0x123_4560, op, true, 42);
            let bytes = encode_packet(&r).unwrap();
            assert_eq!(decode_packet(&bytes, 0).unwrap(), r, "{op}");
        }
    }
}
