//! The [`Branch`] model shared by every simulator in the workspace.

use std::fmt;

/// The base control-flow type of a branch.
///
/// Per §IV-C: branches that push to or pop from the return address stack are
/// labelled `Call` and `Ret` respectively; everything else is `Jump`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// An ordinary jump (encoded `00`).
    #[default]
    Jump,
    /// A call, pushing a return address (encoded `10`).
    Call,
    /// A return, popping a return address (encoded `01`).
    Ret,
}

/// The 4-bit SBBT branch opcode: conditional flag, indirect flag and
/// [`BranchKind`].
///
/// # Examples
///
/// ```
/// use mbp_trace::{BranchKind, Opcode};
///
/// let op = Opcode::new(true, false, BranchKind::Jump);
/// assert!(op.is_conditional());
/// assert!(!op.is_indirect());
/// assert_eq!(Opcode::from_bits(op.bits()), Some(op));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Opcode {
    conditional: bool,
    indirect: bool,
    kind: BranchKind,
}

impl Opcode {
    /// Creates an opcode from its three components.
    pub fn new(conditional: bool, indirect: bool, kind: BranchKind) -> Self {
        Self {
            conditional,
            indirect,
            kind,
        }
    }

    /// The common conditional direct jump (what `bcc` instructions are).
    pub fn conditional_direct() -> Self {
        Self::new(true, false, BranchKind::Jump)
    }

    /// An unconditional direct jump.
    pub fn unconditional_direct() -> Self {
        Self::new(false, false, BranchKind::Jump)
    }

    /// A direct call.
    pub fn call() -> Self {
        Self::new(false, false, BranchKind::Call)
    }

    /// A return (indirect by nature).
    pub fn ret() -> Self {
        Self::new(false, true, BranchKind::Ret)
    }

    /// An indirect unconditional jump (e.g. a jump table).
    pub fn indirect_jump() -> Self {
        Self::new(false, true, BranchKind::Jump)
    }

    /// Whether the branch is conditional.
    pub fn is_conditional(self) -> bool {
        self.conditional
    }

    /// Whether the target comes from a register/memory rather than the
    /// instruction encoding.
    pub fn is_indirect(self) -> bool {
        self.indirect
    }

    /// The base control-flow type.
    pub fn kind(self) -> BranchKind {
        self.kind
    }

    /// Packs into the 4-bit SBBT encoding: bit 0 conditional, bit 1
    /// indirect, bits 2–3 the kind (`00` jump, `10` call, `01` ret).
    pub fn bits(self) -> u8 {
        let kind_bits = match self.kind {
            BranchKind::Jump => 0b00,
            BranchKind::Ret => 0b01,
            BranchKind::Call => 0b10,
        };
        (self.conditional as u8) | ((self.indirect as u8) << 1) | (kind_bits << 2)
    }

    /// Decodes the 4-bit SBBT encoding; `None` if the kind bits are the
    /// reserved `11` pattern or `bits >= 16`.
    pub fn from_bits(bits: u8) -> Option<Self> {
        if bits >= 16 {
            return None;
        }
        let kind = match (bits >> 2) & 0b11 {
            0b00 => BranchKind::Jump,
            0b01 => BranchKind::Ret,
            0b10 => BranchKind::Call,
            _ => return None,
        };
        Some(Self {
            conditional: bits & 1 != 0,
            indirect: bits & 2 != 0,
            kind,
        })
    }
}

impl Default for Opcode {
    fn default() -> Self {
        Self::conditional_direct()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{:?}",
            if self.conditional { "COND." } else { "UNCOND." },
            if self.indirect { "IND." } else { "DIR." },
            self.kind
        )
    }
}

/// One dynamic branch: where it is, where it goes, what it is, and what it
/// did — the argument to `Predictor::train`/`track` in the paper's API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Branch {
    ip: u64,
    target: u64,
    opcode: Opcode,
    taken: bool,
}

impl Branch {
    /// Creates a branch occurrence.
    pub fn new(ip: u64, target: u64, opcode: Opcode, taken: bool) -> Self {
        Self {
            ip,
            target,
            opcode,
            taken,
        }
    }

    /// Virtual address of the branch instruction.
    pub fn ip(self) -> u64 {
        self.ip
    }

    /// Virtual address of the branch target.
    pub fn target(self) -> u64 {
        self.target
    }

    /// The branch opcode.
    pub fn opcode(self) -> Opcode {
        self.opcode
    }

    /// Whether the branch was taken.
    pub fn is_taken(self) -> bool {
        self.taken
    }

    /// Whether this branch is conditional (shorthand).
    pub fn is_conditional(self) -> bool {
        self.opcode.is_conditional()
    }

    /// Returns a copy with a different outcome — used by meta-predictors
    /// that train a chooser with "which component was right" instead of the
    /// program outcome (§VI-D).
    pub fn with_outcome(self, taken: bool) -> Self {
        Self { taken, ..self }
    }

    /// Checks the SBBT validity rules (§IV-C): non-conditional branches are
    /// always taken, and a not-taken conditional indirect branch must have a
    /// null target.
    pub fn is_valid(self) -> bool {
        if !self.opcode.is_conditional() && !self.taken {
            return false;
        }
        if self.opcode.is_conditional() && self.opcode.is_indirect() && !self.taken {
            return self.target == 0;
        }
        true
    }
}

/// A [`Branch`] plus its position in the instruction stream: the number of
/// non-branch instructions executed since the previous branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// The branch occurrence.
    pub branch: Branch,
    /// Non-branch instructions since the previous branch (neither counted).
    pub gap: u32,
}

impl BranchRecord {
    /// Creates a record.
    pub fn new(branch: Branch, gap: u32) -> Self {
        Self { branch, gap }
    }

    /// Instructions this record advances the instruction counter by
    /// (its gap plus the branch itself).
    pub fn instructions(self) -> u64 {
        self.gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_bits_roundtrip_all_valid() {
        for bits in 0u8..16 {
            if let Some(op) = Opcode::from_bits(bits) {
                assert_eq!(op.bits(), bits);
            }
        }
    }

    #[test]
    fn opcode_rejects_reserved_kind() {
        assert_eq!(Opcode::from_bits(0b1100), None);
        assert_eq!(Opcode::from_bits(0b1111), None);
        assert_eq!(Opcode::from_bits(16), None);
    }

    #[test]
    fn opcode_kind_encoding_matches_paper() {
        // JUMP (00), CALL (10), RET (01) in bits 2–3.
        assert_eq!(
            Opcode::new(false, false, BranchKind::Jump).bits() >> 2,
            0b00
        );
        assert_eq!(
            Opcode::new(false, false, BranchKind::Call).bits() >> 2,
            0b10
        );
        assert_eq!(Opcode::new(false, false, BranchKind::Ret).bits() >> 2, 0b01);
    }

    #[test]
    fn validity_rules() {
        // Rule 1: non-conditional must be taken.
        let b = Branch::new(0x1000, 0x2000, Opcode::unconditional_direct(), false);
        assert!(!b.is_valid());
        assert!(b.with_outcome(true).is_valid());

        // Rule 2: conditional indirect not-taken must have null target.
        let op = Opcode::new(true, true, BranchKind::Jump);
        assert!(!Branch::new(0x1000, 0x2000, op, false).is_valid());
        assert!(Branch::new(0x1000, 0, op, false).is_valid());
        assert!(Branch::new(0x1000, 0x2000, op, true).is_valid());

        // Ordinary conditional branches may be either outcome.
        let b = Branch::new(0x1000, 0x2000, Opcode::conditional_direct(), false);
        assert!(b.is_valid());
    }

    #[test]
    fn record_instruction_accounting() {
        let rec = BranchRecord::new(Branch::new(0, 0, Opcode::conditional_direct(), true), 9);
        assert_eq!(rec.instructions(), 10);
    }
}
