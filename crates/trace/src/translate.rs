//! Trace translators, mirroring the conversion programs linked from
//! MBPlib's repository ("the user can translate any traces that they had
//! already recorded for both simulators", §IV-D).

use crate::bt9::{Bt9Trace, Bt9Writer};
use crate::champsim::{ChampsimReader, ChampsimWriter};
use crate::sbbt::{SbbtReader, SbbtWriter};
use crate::{BranchRecord, TraceError, MAX_GAP};

/// Encodes branch records as an in-memory SBBT trace.
///
/// # Errors
///
/// [`TraceError::Unencodable`] if any record does not fit the format.
pub fn records_to_sbbt(records: &[BranchRecord]) -> Result<Vec<u8>, TraceError> {
    let mut w = SbbtWriter::new(Vec::new());
    for r in records {
        w.write_record(r)?;
    }
    w.finish()
}

/// Decodes an SBBT trace (raw or compressed) into branch records.
///
/// # Errors
///
/// Header and packet validation errors.
pub fn sbbt_to_records(bytes: Vec<u8>) -> Result<Vec<BranchRecord>, TraceError> {
    SbbtReader::from_bytes(bytes)?.read_all()
}

/// Converts a parsed BT9 trace to SBBT bytes.
///
/// # Errors
///
/// [`TraceError::Unencodable`] if a BT9 record does not fit SBBT (e.g. an
/// edge with a gap above [`MAX_GAP`]).
pub fn bt9_to_sbbt(trace: &Bt9Trace) -> Result<Vec<u8>, TraceError> {
    let mut w = SbbtWriter::new(Vec::new());
    for rec in trace.records() {
        w.write_record(&rec)?;
    }
    // BT9 knows the true total (it may exceed the per-branch sum when the
    // program ran on after the last branch); preserve it.
    let counted = w.instruction_count();
    if trace.instruction_count > counted {
        w.add_trailing_instructions(trace.instruction_count - counted);
    }
    w.finish()
}

/// Converts branch records to BT9 text.
pub fn records_to_bt9(records: &[BranchRecord]) -> String {
    let mut w = Bt9Writer::new();
    for r in records {
        w.write_record(r);
    }
    w.to_text()
}

/// Reduces a ChampSim-like per-instruction trace to SBBT bytes.
///
/// Long straight-line stretches are split so no packet exceeds the 12-bit
/// gap limit (none of the reference trace sets need this, §IV-C, but a
/// translator must not fail on synthetic input).
///
/// # Errors
///
/// Trace decoding and SBBT encoding errors.
pub fn champsim_to_sbbt(reader: ChampsimReader) -> Result<Vec<u8>, TraceError> {
    let mut w = SbbtWriter::new(Vec::new());
    for mut rec in reader.to_branch_records() {
        // A gap above the format limit cannot be represented; the paper
        // notes none of the CBP5/DPC3 traces need more than 4096. We clamp
        // by accounting the excess to the header only.
        if rec.gap > MAX_GAP {
            w.add_trailing_instructions((rec.gap - MAX_GAP) as u64);
            rec.gap = MAX_GAP;
        }
        w.write_record(&rec)?;
    }
    w.finish()
}

/// Expands branch records into a ChampSim-like per-instruction trace.
///
/// # Errors
///
/// Propagates I/O errors from the in-memory sink (none in practice).
pub fn records_to_champsim(records: &[BranchRecord]) -> Result<Vec<u8>, TraceError> {
    let mut w = ChampsimWriter::new(Vec::new());
    for r in records {
        w.write_branch_record(r)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Branch, Opcode};

    fn sample() -> Vec<BranchRecord> {
        let cond = Opcode::conditional_direct();
        (0..40)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(
                        0x1000 + 32 * (i % 5),
                        0x2000 + 32 * (i % 5),
                        cond,
                        i % 3 != 0,
                    ),
                    (i % 11) as u32,
                )
            })
            .collect()
    }

    #[test]
    fn sbbt_records_roundtrip() {
        let recs = sample();
        let bytes = records_to_sbbt(&recs).unwrap();
        assert_eq!(sbbt_to_records(bytes).unwrap(), recs);
    }

    #[test]
    fn bt9_to_sbbt_preserves_records() {
        let recs = sample();
        let text = records_to_bt9(&recs);
        let bt9 = crate::bt9::parse_text(&text).unwrap();
        let sbbt = bt9_to_sbbt(&bt9).unwrap();
        let back = sbbt_to_records(sbbt).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn bt9_to_sbbt_preserves_instruction_total() {
        let recs = sample();
        let mut w = Bt9Writer::new();
        for r in &recs {
            w.write_record(r);
        }
        let mut trace = w.finish();
        trace.instruction_count += 123; // program ran on after the last branch
        let sbbt = bt9_to_sbbt(&trace).unwrap();
        let r = SbbtReader::from_bytes(sbbt).unwrap();
        assert_eq!(r.header().instruction_count, trace.instruction_count);
    }

    #[test]
    fn champsim_roundtrip_keeps_branch_stream() {
        let recs = sample();
        let champ = records_to_champsim(&recs).unwrap();
        let reader = ChampsimReader::from_reader(&champ[..]).unwrap();
        let sbbt = champsim_to_sbbt(reader).unwrap();
        let back = sbbt_to_records(sbbt).unwrap();
        assert_eq!(back.len(), recs.len());
        for (b, r) in back.iter().zip(&recs) {
            assert_eq!(b.branch.ip(), r.branch.ip());
            assert_eq!(b.branch.is_taken(), r.branch.is_taken());
            assert_eq!(b.gap, r.gap);
        }
    }

    mod properties {
        use super::*;
        use crate::{BranchKind, Opcode};
        use mbp_utils::Xorshift64;

        /// Deterministic valid-record stream — offline stand-in for
        /// proptest.
        fn arb_record(rng: &mut Xorshift64) -> BranchRecord {
            let kind = match rng.below(3) {
                0 => BranchKind::Jump,
                1 => BranchKind::Call,
                _ => BranchKind::Ret,
            };
            let op = Opcode::new(rng.next_bool(), rng.next_bool(), kind);
            let ip = rng.below(1 << 51);
            let mut target = rng.below(1 << 51);
            let taken = rng.next_bool() || !op.is_conditional();
            if op.is_conditional() && op.is_indirect() && !taken {
                target = 0;
            }
            let gap = rng.below(4096) as u32;
            BranchRecord::new(Branch::new(ip, target, op, taken), gap)
        }

        fn record_batches(seed: u64) -> impl Iterator<Item = Vec<BranchRecord>> {
            let mut rng = Xorshift64::new(seed);
            (0..64).map(move |_| {
                let n = rng.below(100) as usize;
                (0..n).map(|_| arb_record(&mut rng)).collect()
            })
        }

        #[test]
        fn sbbt_roundtrip_arbitrary() {
            for records in record_batches(0x7e_0001) {
                let bytes = records_to_sbbt(&records).unwrap();
                assert_eq!(sbbt_to_records(bytes).unwrap(), records);
            }
        }

        #[test]
        fn bt9_roundtrip_arbitrary() {
            for records in record_batches(0x7e_0002) {
                let text = records_to_bt9(&records);
                let parsed = crate::bt9::parse_text(&text).unwrap();
                let back: Vec<BranchRecord> = parsed.records().collect();
                assert_eq!(back, records);
            }
        }

        #[test]
        fn bt9_to_sbbt_composes() {
            for records in record_batches(0x7e_0003) {
                let text = records_to_bt9(&records);
                let parsed = crate::bt9::parse_text(&text).unwrap();
                let bytes = bt9_to_sbbt(&parsed).unwrap();
                assert_eq!(sbbt_to_records(bytes).unwrap(), records);
            }
        }
    }

    #[test]
    fn champsim_format_is_bigger_than_sbbt() {
        // The structural fact behind Table I's 42× row.
        let recs = sample();
        let sbbt = records_to_sbbt(&recs).unwrap();
        let champ = records_to_champsim(&recs).unwrap();
        assert!(champ.len() > 4 * sbbt.len());
    }
}
