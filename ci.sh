#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tier-1 build + tests, and the
# driver-equivalence suite that pins the batch pipeline to the scalar
# reference. Everything runs offline against the vendored toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== driver equivalence (batch pipeline vs scalar reference) =="
cargo test -q -p mbp --test driver_equivalence
cargo test -q -p mbp --test equivalence

echo "CI OK"
