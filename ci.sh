#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tier-1 build + tests, and the
# driver-equivalence suite that pins the batch pipeline to the scalar
# reference. Everything runs offline against the vendored toolchain.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== clippy (panic-free decode paths) =="
# Library code of the crates that parse untrusted bytes must not contain
# unwrap/expect at all — every failure is a typed error. Test code (the
# --lib target excludes it) is exempt.
cargo clippy -p mbp-trace -p mbp-compress --lib -- \
  -D warnings -D clippy::unwrap_used -D clippy::expect_used

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== driver equivalence (batch pipeline vs scalar reference) =="
cargo test -q -p mbp --test driver_equivalence
cargo test -q -p mbp --test equivalence

echo "== fault injection (readers fail closed on corrupt traces) =="
cargo test -q -p mbp-faultsim --test fault_injection
cargo test -q -p mbp-faultsim --test alloc_bounds

echo "== observability layer (mbp-stats) =="
cargo test -q -p mbp-stats

echo "== golden vectors (bit-exact predictor conformance) =="
cargo test -q -p mbp-predictors --test golden_vectors

echo "== batch equivalence (SoA kernels vs scalar call sequence) =="
cargo test -q -p mbp-predictors --test batch_equivalence

echo "== utils property suite =="
cargo test -q -p mbp-utils --test properties

echo "== event timeline + stats-diff gate =="
# An instrumented smoke sweep must produce a Chrome trace that parses back
# (strictly monotonic per-thread timestamps), and its metrics must diff
# cleanly against the committed baseline. The threshold is deliberately
# loose: counts are deterministic (seeded workloads) and informational,
# so the gate really fires on faults appearing (0 -> N is +inf%) or a
# catastrophic slowdown — not on machine-to-machine timing noise.
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
target/release/mbpsim gen --suite smoke --out "$obs_tmp/traces" >/dev/null
target/release/mbpsim sweep --predictors gshare,bimodal \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --jobs 2 --quiet \
  --introspect --timeseries-out "$obs_tmp/sweep_ts.csv" \
  --trace-out "$obs_tmp/run.trace.json" \
  --metrics-out "$obs_tmp/metrics.json" >/dev/null
target/release/mbpsim validate-trace "$obs_tmp/run.trace.json"
target/release/mbpsim stats-diff tests/fixtures/ci_metrics_baseline.json \
  "$obs_tmp/metrics.json" --threshold 5000
grep -q "^predictor,window," "$obs_tmp/sweep_ts.csv" \
  || { echo "sweep timeseries CSV missing its header" >&2; exit 1; }

echo "== introspection + timeseries + HTML report gate =="
# An introspected run must carry timeseries and probe sections that diff
# cleanly against the committed fixture, and `mbpsim report` must render
# the document as well-formed self-contained HTML (sparklines included).
target/release/mbpsim run --predictor tage \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --quiet \
  --introspect --window 10000 --timeseries-out "$obs_tmp/run_ts.csv" \
  --metrics --metrics-out "$obs_tmp/introspect.json" >/dev/null 2>/dev/null
target/release/mbpsim stats-diff tests/fixtures/ci_introspect_baseline.json \
  "$obs_tmp/introspect.json" --threshold 5000
target/release/mbpsim report "$obs_tmp/introspect.json" \
  --out "$obs_tmp/report.html" 2>/dev/null
grep -q "</html>" "$obs_tmp/report.html" \
  || { echo "report is not well-formed HTML" >&2; exit 1; }
grep -q "<svg" "$obs_tmp/report.html" \
  || { echo "report is missing its sparklines" >&2; exit 1; }

echo "== batch kernels engaged (kernel_branches > 0 in metrics) =="
# A plain smoke run must ride the predict_batch fast path; a driver change
# that silently diverts everything to the scalar fallback shows up here as
# kernel_branches = 0 long before it shows up as a throughput regression.
target/release/mbpsim run --predictor gshare \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --quiet \
  --metrics --metrics-out "$obs_tmp/kernel_metrics.json" >/dev/null 2>/dev/null
kb="$(grep -o '"kernel_branches": *[0-9]*' "$obs_tmp/kernel_metrics.json" \
  | grep -o '[0-9]*$' | head -n 1)"
if [ -z "$kb" ] || [ "$kb" -eq 0 ]; then
  echo "batched driver did not take the kernel path (kernel_branches=${kb:-missing})" >&2
  exit 1
fi

echo "== sweep resilience gate (checkpoint -> torn tail -> resume) =="
# A checkpointed smoke sweep whose checkpoint is torn mid-record (as a
# crash or kill -9 would leave it) must resume to a document identical to
# the clean run, byte for byte, once the wall-clock-derived fields are
# stripped. The torn third record exercises the loader's tolerate-the-tail
# path; the metrics assert the resume actually skipped settled work.
canon() {
  grep -vE '"(decode_time|wall_time|cumulative_simulation_time|parallel_speedup|simulation_time)":' "$1"
}
res_args=(sweep --predictors gshare,bimodal,gselect,two-level
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --jobs 1 --quiet)
ck="$obs_tmp/sweep.ckpt.jsonl"
target/release/mbpsim "${res_args[@]}" > "$obs_tmp/sweep_clean.json"
target/release/mbpsim "${res_args[@]}" --checkpoint "$ck" > /dev/null
records="$(wc -l < "$ck")"
if [ "$records" -ne 4 ]; then
  echo "checkpoint holds $records records, expected 4" >&2; exit 1
fi
l1="$(sed -n 1p "$ck" | wc -c)"; l2="$(sed -n 2p "$ck" | wc -c)"
head -c "$(( l1 + l2 / 2 ))" "$ck" > "$ck.torn" && mv "$ck.torn" "$ck"
cp "$ck" "$ck.instrumented"
target/release/mbpsim "${res_args[@]}" --checkpoint "$ck" --resume \
  > "$obs_tmp/sweep_resumed.json"
diff <(canon "$obs_tmp/sweep_clean.json") <(canon "$obs_tmp/sweep_resumed.json") \
  || { echo "resumed sweep diverged from the clean run" >&2; exit 1; }
# A second resume from the same torn tail, instrumented: metrics (which
# merge into the stdout document, hence the separate run) must show the
# settled predictor being skipped, and the lifecycle instants must land in
# the event timeline.
target/release/mbpsim "${res_args[@]}" --checkpoint "$ck.instrumented" --resume \
  --metrics-out "$obs_tmp/resume_metrics.json" \
  --trace-out "$obs_tmp/resume.trace.json" > /dev/null 2>/dev/null
grep -q '"resume_skips": 1' "$obs_tmp/resume_metrics.json" \
  || { echo "resume did not skip the checkpointed predictor" >&2; exit 1; }
target/release/mbpsim validate-trace "$obs_tmp/resume.trace.json"
grep -q 'sweep.checkpoint_write' "$obs_tmp/resume.trace.json" \
  || { echo "checkpoint writes missing from the event timeline" >&2; exit 1; }
cargo test -q -p mbp --test sweep_resilience

echo "== simpoint gate (sampled sweep reconstructs full-sweep MPKI) =="
# Phase-sample the smoke trace, then sweep all eight stock predictors both
# ways. The sampled sweep must touch < 50% of the trace's instructions and
# reconstruct each predictor's whole-trace MPKI within the documented
# bound: |sampled - full| <= max(15% of full, 1.0 MPKI). The absolute floor
# exists because the smoke trace is tiny (100k instructions) and the best
# predictors sit under 1 MPKI, where relative error is dominated by a
# handful of mispredictions. The lifecycle instants must land in the event
# timeline on both surfaces.
sp="gshare,bimodal,gselect,two-level,tournament,hashed-perceptron,tage,batage"
target/release/mbpsim simpoint --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" \
  --window 2000 --clusters 8 --warmup-windows 2 \
  --out "$obs_tmp/phases.json" --trace-out "$obs_tmp/simpoint.trace.json" \
  2>/dev/null
target/release/mbpsim validate-trace "$obs_tmp/simpoint.trace.json"
grep -q 'simpoint.extract' "$obs_tmp/simpoint.trace.json" \
  || { echo "simpoint.extract missing from the event timeline" >&2; exit 1; }
grep -q '"schema_version": 1' "$obs_tmp/phases.json" \
  || { echo "phases document is missing its schema version" >&2; exit 1; }
target/release/mbpsim sweep --predictors "$sp" \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --jobs 2 --quiet \
  > "$obs_tmp/sp_full.json"
target/release/mbpsim sweep --predictors "$sp" \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --jobs 2 --quiet \
  --phases "$obs_tmp/phases.json" \
  --trace-out "$obs_tmp/sampled.trace.json" \
  > "$obs_tmp/sp_sampled.json" 2>/dev/null
target/release/mbpsim validate-trace "$obs_tmp/sampled.trace.json"
grep -q 'simpoint.sampled_slice' "$obs_tmp/sampled.trace.json" \
  || { echo "simpoint.sampled_slice missing from the event timeline" >&2; exit 1; }
# Leaderboard rows render "predictor" then "mpki" on consecutive pretty-
# printed lines; pair them up per document and compare per predictor.
mpki_of() {
  awk '/"predictor": "/ {gsub(/[",]/,"",$2); p=$2}
       /"mpki":/ {if (p!="") {gsub(/,/,"",$2); print p, $2; p=""}}' "$1"
}
paste <(mpki_of "$obs_tmp/sp_full.json" | sort) \
      <(mpki_of "$obs_tmp/sp_sampled.json" | sort) \
  | awk '{
      if ($1 != $3) { printf "predictor mismatch: %s vs %s\n", $1, $3; bad=1 }
      f=$2; s=$4; e=(s>f)?s-f:f-s; lim=(0.15*f>1.0)?0.15*f:1.0
      if (e > lim) {
        printf "%s: sampled %.3f vs full %.3f MPKI (err %.3f > %.3f)\n", $1, s, f, e, lim
        bad=1
      }
    } END { exit bad }' \
  || { echo "sampled sweep missed the reconstruction bound" >&2; exit 1; }
frac="$(grep -o '"simulated_fraction": *[0-9.]*' "$obs_tmp/sp_sampled.json" \
  | head -n 1 | grep -o '[0-9.]*$')"
awk -v f="$frac" 'BEGIN { exit !(f > 0 && f < 0.5) }' \
  || { echo "sampled sweep fraction $frac not under 50%" >&2; exit 1; }
grep -q '"max_error_estimate":' "$obs_tmp/sp_sampled.json" \
  || { echo "sampled sweep is missing its error estimate" >&2; exit 1; }
cargo test -q -p mbp --test simpoint_accuracy

echo "== live telemetry gate (scrape /metrics + /snapshot from a serving sweep) =="
# A telemetry-serving sweep must answer /metrics with OpenMetrics text
# (TYPE lines, monotone cumulative histogram buckets) and /snapshot with
# the versioned JSON while its listener is live. Port 0 picks an ephemeral
# port; the binding is parsed from the greppable stderr line, and scraping
# rides bash's /dev/tcp so the gate needs no curl. --telemetry-hold-ms
# keeps the listener serving the final state long enough to scrape even
# if the smoke sweep itself finishes first.
scrape() { # scrape <port> <path> <outfile>
  exec 3<>"/dev/tcp/127.0.0.1/$1" &&
    printf 'GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n' "$2" >&3 &&
    cat <&3 > "$3"
  local rc=$?
  exec 3<&- 3>&- 2>/dev/null || true
  return "$rc"
}
target/release/mbpsim sweep --predictors "$sp" \
  --trace "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" --jobs 2 --quiet \
  --telemetry-listen 127.0.0.1:0 --telemetry-hold-ms 3000 \
  > "$obs_tmp/tele_sweep.json" 2> "$obs_tmp/tele_stderr.txt" &
tele_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(grep -o 'telemetry listening on http://127\.0\.0\.1:[0-9]*' \
    "$obs_tmp/tele_stderr.txt" 2>/dev/null | grep -o '[0-9]*$' | head -n 1 || true)"
  [ -n "$port" ] && break
  sleep 0.05
done
if [ -z "$port" ]; then
  echo "telemetry listener address never appeared on stderr" >&2
  kill "$tele_pid" 2>/dev/null || true
  exit 1
fi
scrape "$port" /healthz "$obs_tmp/tele_health.txt" \
  || { echo "cannot scrape /healthz" >&2; exit 1; }
grep -q 'ok' "$obs_tmp/tele_health.txt" \
  || { echo "/healthz did not answer ok" >&2; exit 1; }
scrape "$port" /metrics "$obs_tmp/tele_metrics.txt" \
  || { echo "cannot scrape /metrics" >&2; exit 1; }
grep -q '^# TYPE mbp_sim_instructions counter' "$obs_tmp/tele_metrics.txt" \
  || { echo "/metrics is missing its TYPE lines" >&2; exit 1; }
grep -q '^mbp_sim_instructions_total [0-9]' "$obs_tmp/tele_metrics.txt" \
  || { echo "/metrics is missing the instruction counter" >&2; exit 1; }
grep '^mbp_sweep_predictor_us_bucket' "$obs_tmp/tele_metrics.txt" \
  | awk '{ v=$NF+0; if (v < prev) exit 1; prev=v } END { exit (NR == 0) }' \
  || { echo "histogram buckets are missing or not cumulative" >&2; exit 1; }
scrape "$port" /snapshot "$obs_tmp/tele_snapshot.json" \
  || { echo "cannot scrape /snapshot" >&2; exit 1; }
grep -q '"schema_version": 2' "$obs_tmp/tele_snapshot.json" \
  || { echo "/snapshot is missing its schema version" >&2; exit 1; }
grep -q '"predictors": \[' "$obs_tmp/tele_snapshot.json" \
  || { echo "/snapshot is missing the predictor board" >&2; exit 1; }
grep -q '"worst_branch":' "$obs_tmp/tele_snapshot.json" \
  || { echo "/snapshot rows are missing the worst_branch drill-down" >&2; exit 1; }
grep -q '^mbp_h2p_worst_branch_mispredictions' "$obs_tmp/tele_metrics.txt" \
  || { echo "/metrics is missing the mbp_h2p_* family" >&2; exit 1; }
target/release/mbpsim top "127.0.0.1:$port" --once > "$obs_tmp/tele_top.txt" \
  || { echo "mbpsim top could not attach" >&2; exit 1; }
grep -q '^mbpsim sweep | elapsed' "$obs_tmp/tele_top.txt" \
  || { echo "top dashboard header missing" >&2; exit 1; }
grep -q 'worst branch 0x' "$obs_tmp/tele_top.txt" \
  || { echo "top dashboard is missing the hot-branch drill-down row" >&2; exit 1; }
wait "$tele_pid" \
  || { echo "telemetry-serving sweep failed" >&2; exit 1; }

echo "== misprediction forensics gate (explain coverage + report stability) =="
# `mbpsim explain` on the smoke trace must produce a versioned forensic
# report whose top-10 hard-to-predict set explains at least the committed
# floor of all mispredictions (the smoke workload concentrates its miss
# mass: measured coverage is 1.0 for every stock predictor, so the floor
# is strict), must attribute mispredictions to a component for a composite
# predictor, and must hash identically across two runs once wall-clock
# fields are stripped.
target/release/mbpsim explain "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" \
  tournament --quiet > "$obs_tmp/explain_a.json" 2>/dev/null
target/release/mbpsim explain "$obs_tmp/traces/SMOKE-mobile.sbbt.mzst" \
  tournament --quiet > "$obs_tmp/explain_b.json" 2>/dev/null
grep -q '"schema_version": 1' "$obs_tmp/explain_a.json" \
  || { echo "forensic report is missing its schema version" >&2; exit 1; }
cov="$(grep -o '"fraction": *[0-9.]*' "$obs_tmp/explain_a.json" \
  | tail -n 1 | grep -o '[0-9.]*$')"
awk -v c="$cov" 'BEGIN { exit !(c >= 0.9) }' \
  || { echo "top-10 forensic coverage ${cov:-missing} under the committed 0.9 floor" >&2; exit 1; }
grep -Eq '"(chooser_wrong|both_wrong)":' "$obs_tmp/explain_a.json" \
  || { echo "tournament report carries no component attribution" >&2; exit 1; }
hash_a="$(canon "$obs_tmp/explain_a.json" | sha256sum | cut -d' ' -f1)"
hash_b="$(canon "$obs_tmp/explain_b.json" | sha256sum | cut -d' ' -f1)"
if [ "$hash_a" != "$hash_b" ]; then
  echo "forensic report hash unstable across identical runs" >&2
  diff <(canon "$obs_tmp/explain_a.json") <(canon "$obs_tmp/explain_b.json") >&2 || true
  exit 1
fi
cargo test -q -p mbp --test forensics

echo "== bench guard (instrumented batch pipeline within 5% of baseline) =="
# MBP_BENCH_TELEMETRY=1 runs the guard beside a live but unscraped
# telemetry listener, so the 5% envelope also covers its standing cost.
MBP_BENCH_TELEMETRY=1 cargo run -q --release -p mbp-bench --bin bench_guard

echo "CI OK"
