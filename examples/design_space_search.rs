//! Searching the parameter space (§VI-B).
//!
//! "The state-of-the-art predictors … have dozens of parameters. In that
//! case, we cannot afford to simulate all possible combinations … the user
//! also has complete control of the program execution. Thus, they can
//! integrate other libraries in their code and call MBPlib as part of the
//! optimization process."
//!
//! This example plays the role of that "other library": a small random
//! search + local-mutation optimizer over TAGE's geometry (number of
//! tables, history range, tag widths), with MBPlib as its inner loop.
//!
//! Run with: `cargo run --release -p mbp --example design_space_search`

use mbp::examples::{Tage, TageConfig, TageTableSpec};
use mbp::sim::{simulate, SimConfig, SliceSource};
use mbp::trace::BranchRecord;
use mbp::utils::Xorshift64;
use mbp::workloads::Suite;

/// A candidate point in the design space.
#[derive(Clone, Debug)]
struct Candidate {
    num_tables: u32,
    min_hist: u32,
    max_hist: u32,
    tag_bits: u32,
}

impl Candidate {
    fn config(&self) -> TageConfig {
        let n = self.num_tables.max(2);
        // Geometric interpolation between min and max history.
        let ratio = (self.max_hist as f64 / self.min_hist as f64).powf(1.0 / (n - 1) as f64);
        let mut lengths: Vec<u32> = (0..n)
            .map(|i| (self.min_hist as f64 * ratio.powi(i as i32)).round() as u32)
            .collect();
        lengths.dedup();
        TageConfig {
            base_log_size: 12,
            tables: lengths
                .iter()
                .map(|&hist_len| TageTableSpec {
                    log_size: 9,
                    hist_len,
                    tag_bits: self.tag_bits,
                })
                .collect(),
            reset_period: 128 * 1024,
            seed: 0x7a6e,
        }
    }

    fn mutate(&self, rng: &mut Xorshift64) -> Candidate {
        let mut c = self.clone();
        match rng.below(4) {
            0 => {
                c.num_tables =
                    (c.num_tables as i64 + [-1, 1][rng.below(2) as usize]).clamp(3, 14) as u32
            }
            1 => {
                c.min_hist =
                    (c.min_hist as i64 + [-1, 2][rng.below(2) as usize]).clamp(2, 16) as u32
            }
            2 => {
                c.max_hist =
                    (c.max_hist as i64 + [-80, 80][rng.below(2) as usize]).clamp(64, 800) as u32
            }
            _ => {
                c.tag_bits =
                    (c.tag_bits as i64 + [-1, 1][rng.below(2) as usize]).clamp(7, 13) as u32
            }
        }
        if c.min_hist >= c.max_hist {
            c.max_hist = c.min_hist + 32;
        }
        c
    }
}

fn evaluate(c: &Candidate, traces: &[(String, Vec<BranchRecord>)]) -> f64 {
    let mut total = 0.0;
    for (_, records) in traces {
        let mut predictor = Tage::new(c.config());
        let mut source = SliceSource::new(records);
        let r = simulate(&mut source, &mut predictor, &SimConfig::default()).expect("in-memory");
        total += r.metrics.mpki;
    }
    total / traces.len() as f64
}

fn main() {
    let suite = Suite::cbp5_training(1);
    let traces: Vec<_> = suite
        .traces
        .iter()
        .take(3)
        .map(|t| (t.name.clone(), t.records()))
        .collect();
    println!("optimizing TAGE geometry on {} traces\n", traces.len());

    let mut rng = Xorshift64::new(0x0b71);
    let mut best = Candidate {
        num_tables: 5,
        min_hist: 4,
        max_hist: 64,
        tag_bits: 8,
    };
    let mut best_score = evaluate(&best, &traces);
    println!("start: {best:?} → {best_score:.4} MPKI");

    for step in 0..20 {
        // Half random restarts, half local mutations — a toy optimizer,
        // but the integration pattern is the point.
        let candidate = if step % 4 == 3 {
            Candidate {
                num_tables: 3 + rng.below(10) as u32,
                min_hist: 2 + rng.below(10) as u32,
                max_hist: 64 + rng.below(600) as u32,
                tag_bits: 7 + rng.below(6) as u32,
            }
        } else {
            best.mutate(&mut rng)
        };
        let score = evaluate(&candidate, &traces);
        let mark = if score < best_score {
            "← new best"
        } else {
            ""
        };
        println!(
            "step {step:>2}: tables={:<2} hist={:>2}..{:<3} tag={:<2} → {score:.4} MPKI {mark}",
            candidate.num_tables, candidate.min_hist, candidate.max_hist, candidate.tag_bits
        );
        if score < best_score {
            best_score = score;
            best = candidate;
        }
    }

    println!("\nbest configuration after search: {best:?}");
    println!("average MPKI: {best_score:.4}");
    println!(
        "storage: {:.1} kB",
        Tage::new(best.config()).storage_bits() as f64 / 8.0 / 1024.0
    );
}
