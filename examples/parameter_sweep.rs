//! Parameter optimization (§VI-A/B): sweep GShare's history length.
//!
//! The paper's CMake loop generates one executable per `H`; being a
//! library, we express the same sweep as a plain loop — with the simulator
//! called from *our* code, the sweep can feed any optimizer.
//!
//! Run with: `cargo run --release -p mbp --example parameter_sweep`

use mbp::examples::Gshare;
use mbp::sim::{simulate, SimConfig, SliceSource};
use mbp::workloads::Suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small training set (CBP5-like categories, scaled down).
    let suite = Suite::cbp5_training(1);
    let traces: Vec<_> = suite
        .traces
        .iter()
        .take(4)
        .map(|spec| (spec.name.clone(), spec.records()))
        .collect();
    println!(
        "sweeping GShare history length on {} traces from {}",
        traces.len(),
        suite.name
    );

    let table_bits = 18; // fixed by the storage budget (64 kB)
    let mut best: Option<(u32, f64)> = None;
    println!("{:>4} {:>10}   per-trace MPKI", "H", "avg MPKI");
    for h in (6..=30).step_by(2) {
        let mut mpkis = Vec::new();
        for (_, records) in &traces {
            let mut source = SliceSource::new(records);
            let mut predictor = Gshare::new(h, table_bits);
            let result = simulate(&mut source, &mut predictor, &SimConfig::default())?;
            mpkis.push(result.metrics.mpki);
        }
        let avg = mpkis.iter().sum::<f64>() / mpkis.len() as f64;
        let detail: Vec<String> = mpkis.iter().map(|m| format!("{m:6.3}")).collect();
        println!("{h:>4} {avg:>10.4}   [{}]", detail.join(", "));
        if best.is_none_or(|(_, b)| avg < b) {
            best = Some((h, avg));
        }
    }

    let (best_h, best_mpki) = best.expect("sweep ran");
    println!("\nbest history length: H = {best_h} ({best_mpki:.4} MPKI average)");
    Ok(())
}
