//! The §II motivation, both analytically and in simulation.
//!
//! First reproduces the paper's CPI arithmetic (a wide, deep machine pays
//! ~9× more for the same MPKI improvement), then demonstrates the same
//! effect in the champsim-lite cycle model.
//!
//! Run with: `cargo run --release -p mbp --example pipeline_cost`

use mbp::baselines::champsim::{
    cpi_model, ChampsimConfig, Cpu, PipelineModel, TargetPredictorChoice,
};
use mbp::examples::{AlwaysTaken, Gshare};
use mbp::trace::champsim::ChampsimWriter;
use mbp::workloads::{ProgramParams, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("analytic model (§II):");
    let narrow = PipelineModel {
        fetch_width: 1,
        branch_stage: 5,
    };
    let wide = PipelineModel {
        fetch_width: 4,
        branch_stage: 11,
    };
    for (name, p) in [("1-wide, stage-5", narrow), ("4-wide, stage-11", wide)] {
        let at5 = cpi_model(p, 5.0);
        let at4 = cpi_model(p, 4.0);
        println!(
            "  {name:<18} CPI@5mpki = {at5:.3}, CPI@4mpki = {at4:.3}, speedup = {:.2}%",
            100.0 * (at5 / at4 - 1.0)
        );
    }

    println!("\ncycle model (champsim-lite, Ice-Lake-like):");
    let records = TraceGenerator::from_params(&ProgramParams::int_speed(), 0xc1c1e)
        .take_instructions(400_000);
    let mut writer = ChampsimWriter::new(Vec::new());
    for r in &records {
        writer.write_branch_record(r)?;
    }
    let trace = writer.finish()?;

    for (name, predictor) in [
        (
            "always-taken",
            Box::new(AlwaysTaken) as Box<dyn mbp::sim::Predictor>,
        ),
        ("gshare 64kB", Box::new(Gshare::new(25, 18))),
    ] {
        let mut cpu = Cpu::new(
            ChampsimConfig::ice_lake_like(),
            predictor,
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        let stats = cpu.run_bytes(&trace)?;
        println!(
            "  {name:<14} IPC = {:.3}  ({} cycles, {:.3} branch MPKI, {} target misses)",
            stats.ipc, stats.cycles, stats.mpki, stats.target_mispredictions
        );
    }
    println!("\nthe better predictor shows up directly as IPC — and the cycle");
    println!("model took visibly longer than any MBPlib run on the same stream.");
    Ok(())
}
