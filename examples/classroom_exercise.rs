//! The classroom exercise of §V: "the examples library could serve a
//! teacher to set up an exercise in which the students measure how the
//! MPKI varies with respect to some parameters".
//!
//! This one is the classic: sweep the *storage budget* from 2 kB to 256 kB
//! for three generations of predictors and watch (a) every predictor
//! improve with budget, and (b) the generations separate — the reason the
//! field moved from bimodal to history-based to tagged-geometric designs.
//!
//! Run with: `cargo run --release -p mbp --example classroom_exercise`

use mbp::examples::{Bimodal, Gshare, Tage, TageConfig, TageTableSpec};
use mbp::sim::SimConfig;
use mbp::workloads::{ProgramParams, Suite, TraceSpec};

/// TAGE geometry scaled to a log2 storage budget.
fn tage_at(log_budget_bits: u32) -> TageConfig {
    let table_log = log_budget_bits.saturating_sub(7).clamp(6, 12);
    let lengths = [4u32, 8, 16, 32, 64, 128];
    TageConfig {
        base_log_size: table_log + 1,
        tables: lengths
            .iter()
            .map(|&hist_len| TageTableSpec {
                log_size: table_log,
                hist_len,
                tag_bits: 9,
            })
            .collect(),
        reset_period: 128 * 1024,
        seed: 0x7a6e,
    }
}

fn kb(bits: u64) -> f64 {
    bits as f64 / 8.0 / 1024.0
}

fn main() {
    // A suite hard enough that table capacity matters: big-footprint
    // server-style programs.
    let suite = Suite {
        name: "classroom",
        traces: vec![
            TraceSpec {
                name: "SERVER-a".into(),
                params: ProgramParams::server(),
                seed: 0xc1a55,
                instructions: 1_000_000,
            },
            TraceSpec {
                name: "SERVER-b".into(),
                params: ProgramParams::server(),
                seed: 0xc1a56,
                instructions: 1_000_000,
            },
        ],
    };
    let config = SimConfig::default();
    println!("MPKI versus storage budget ({} suite)\n", suite.name);
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "budget", "bimodal", "gshare", "tage"
    );

    for log_bits in [9u32, 11, 13, 15, 18] {
        // Bimodal: 2-bit counters → 2^(log_bits-1) entries.
        let bimodal_log = log_bits - 1;
        let bimodal = suite.evaluate(|| Bimodal::new(bimodal_log), &config);
        let bimodal_kb = kb(Bimodal::new(bimodal_log).storage_bits());

        // GShare: same table, moderate history (longer histories need more
        // training time than a short trace provides).
        let gshare = suite.evaluate(|| Gshare::new(12, bimodal_log), &config);

        // TAGE at a comparable budget.
        let tage_cfg = tage_at(log_bits);
        let tage_kb = kb(Tage::new(tage_cfg.clone()).storage_bits());
        let tage = suite.evaluate(|| Tage::new(tage_cfg.clone()), &config);

        println!(
            "{:>7.2}kB {:>12.4} {:>12.4} {:>12.4}   (tage actual {:.0} kB)",
            bimodal_kb, bimodal.amean_mpki, gshare.amean_mpki, tage.amean_mpki, tage_kb
        );
    }

    println!("\nexpected shape: columns improve with budget until the working set");
    println!("fits, then saturate; and each generation dominates the previous one.");
}
