//! The comparison simulator (§VI-C): measure the effect of adding a loop
//! predictor to TAGE, branch by branch.
//!
//! Run with: `cargo run --release -p mbp --example predictor_comparison`

use mbp::examples::{LoopPredictor, Tage, TageConfig};
use mbp::sim::{simulate_comparison, SimConfig, SliceSource};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Media-style code is loop-heavy: the natural habitat of a loop
    // predictor.
    let records =
        TraceGenerator::from_params(&ProgramParams::media(), 0x1007).take_instructions(1_500_000);
    let mut source = SliceSource::named(&records, "MEDIA-loops");

    let mut plain = Tage::new(TageConfig::small());
    let mut with_loop = LoopPredictor::new(Box::new(Tage::new(TageConfig::small())), 8);

    let result = simulate_comparison(
        &mut source,
        &mut plain,
        &mut with_loop,
        &SimConfig::default(),
    )?;

    println!("{:#}", result.to_json());
    println!(
        "\nTAGE alone:        {:.4} MPKI ({} mispredictions)",
        result.mpki[0], result.mispredictions[0]
    );
    println!(
        "TAGE + loop pred.: {:.4} MPKI ({} mispredictions)",
        result.mpki[1], result.mispredictions[1]
    );
    println!(
        "occurrences mispredicted by only one side: {} (TAGE) vs {} (TAGE+loop)",
        result.only_a_wrong, result.only_b_wrong
    );
    println!("\nbranches with the biggest MPKI difference:");
    for d in result.most_diverging.iter().take(8) {
        println!(
            "  {:#010x}: {:>7} occurrences, {:>6} vs {:>6} mispredictions ({:+.4} MPKI)",
            d.ip, d.occurrences, d.mispredictions_a, d.mispredictions_b, d.mpki_difference
        );
    }
    Ok(())
}
