//! Quickstart: the MBPlib workflow end to end.
//!
//! Generates a SHORT_SERVER-like synthetic trace, stores it as a
//! compressed SBBT file, reads it back, runs the paper's example predictor
//! (a 64 kB GShare, as in Listing 1) and prints the JSON result.
//!
//! Run with: `cargo run --release -p mbp --example quickstart`

use mbp::compress::Codec;
use mbp::examples::Gshare;
use mbp::sim::{simulate, SimConfig};
use mbp::trace::sbbt::{SbbtReader, SbbtWriter};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a trace. Real users download the translated CBP5 set; we
    //    synthesize an equivalent stream (see DESIGN.md).
    let mut generator =
        TraceGenerator::from_params(&ProgramParams::server(), 0x5e_ed).with_name("SHORT_SERVER-1");
    let records = generator.take_instructions(1_000_000);

    // 2. Store it as SBBT compressed with MZST at the highest level, like
    //    the distributed trace sets (§IV).
    let dir = std::env::temp_dir().join("mbplib-quickstart");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("SHORT_SERVER-1.sbbt.mzst");
    let mut writer = SbbtWriter::create_compressed(&path, Codec::Mzst, 22)?;
    for record in &records {
        writer.write_record(record)?;
    }
    writer.finish_compressed()?;
    let on_disk = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} branches ({} raw bytes) to {} ({} bytes compressed)",
        records.len(),
        24 + 16 * records.len(),
        path.display(),
        on_disk,
    );

    // 3. Simulate: user code calls MBPlib, not the other way around (§I).
    let mut trace = SbbtReader::open(&path)?;
    let mut predictor = Gshare::new(25, 18);
    let config = SimConfig {
        warmup_instructions: 100_000,
        ..SimConfig::default()
    };
    let result = simulate(&mut trace, &mut predictor, &config)?;

    // 4. The result is a JSON document (Listing 1).
    println!("{:#}", result.to_json());
    println!(
        "\nGShare(25, 18): {:.3} MPKI, {:.2}% accuracy over {} conditional branches",
        result.metrics.mpki,
        100.0 * result.metrics.accuracy,
        result.metadata.num_conditional_branches,
    );
    Ok(())
}
