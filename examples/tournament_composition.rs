//! Reusability and composability (§VI-D): build the generalized tournament
//! from arbitrary components and show it beats both of them.
//!
//! The train/track split is what makes this possible: the tournament trains
//! its chooser with a synthetic "which component was right" branch while
//! still tracking every component with the program branch.
//!
//! Run with: `cargo run --release -p mbp --example tournament_composition`

use mbp::examples::{Bimodal, Gshare, Tournament, TwoBcGskew};
use mbp::sim::{simulate, Predictor, SimConfig, SliceSource};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn run(name: &str, predictor: &mut dyn Predictor, records: &[mbp::trace::BranchRecord]) {
    let mut source = SliceSource::named(records, "SERVER-mix");
    let result = simulate(&mut source, predictor, &SimConfig::default()).expect("in-memory");
    println!(
        "{name:<38} {:>8.4} MPKI  {:>9} mispredictions",
        result.metrics.mpki, result.metrics.mispredictions
    );
}

fn main() {
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 0x70_42).take_instructions(1_500_000);
    println!(
        "running on {} branches ({} conditional)\n",
        records.len(),
        records.iter().filter(|r| r.branch.is_conditional()).count()
    );

    // The original tournament: bimodal (stable) vs GShare (history).
    run("bimodal(14)", &mut Bimodal::new(14), &records);
    run("gshare(15, 14)", &mut Gshare::new(15, 14), &records);
    let mut classic = Tournament::new(
        Box::new(Bimodal::new(12)),
        Box::new(Bimodal::new(14)),
        Box::new(Gshare::new(15, 14)),
    );
    run("tournament(bimodal, gshare)", &mut classic, &records);

    // The *generalized* tournament accepts any components: arbitrate
    // between GShare and 2bc-gskew with a GShare chooser.
    let mut exotic = Tournament::new(
        Box::new(Gshare::new(8, 12)),
        Box::new(Gshare::new(15, 14)),
        Box::new(TwoBcGskew::new(14, 13)),
    );
    run("tournament(gshare, 2bc-gskew)", &mut exotic, &records);

    // Components nest arbitrarily: a tournament of tournaments.
    let mut nested = Tournament::new(
        Box::new(Bimodal::new(12)),
        Box::new(Tournament::classic(13)),
        Box::new(TwoBcGskew::new(14, 13)),
    );
    run("tournament(tournament, 2bc-gskew)", &mut nested, &records);

    println!("\nmetadata of the nested composition:");
    println!("{:#}", nested.metadata());
}
