//! Trace tooling: translate between formats and inspect the results.
//!
//! Reproduces the workflow behind Table I: the same program stream stored
//! as BT9 text (CBP5), as a ChampSim-like per-instruction trace, and as
//! SBBT, each under both codecs.
//!
//! Run with: `cargo run --release -p mbp --example trace_tools`

use mbp::compress::{compress, Codec};
use mbp::trace::sbbt::{SbbtHeader, SbbtReader};
use mbp::trace::{bt9, translate};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn row(label: &str, raw: usize, mgz: usize, mzst: usize) {
    println!(
        "{label:<28} {:>12} {:>12} {:>12}",
        format!("{raw} B"),
        format!("{mgz} B"),
        format!("{mzst} B"),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records =
        TraceGenerator::from_params(&ProgramParams::int_speed(), 0xd15c).take_instructions(500_000);
    println!("one stream, three formats ({} branches):\n", records.len());
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "format", "raw", "MGZ-9", "MZST-22"
    );

    // SBBT.
    let sbbt = translate::records_to_sbbt(&records)?;
    row(
        "SBBT (16 B/branch)",
        sbbt.len(),
        compress(&sbbt, Codec::Mgz, 9)?.len(),
        compress(&sbbt, Codec::Mzst, 22)?.len(),
    );

    // BT9 text.
    let bt9_text = translate::records_to_bt9(&records);
    row(
        "BT9 (text + graph)",
        bt9_text.len(),
        compress(bt9_text.as_bytes(), Codec::Mgz, 9)?.len(),
        compress(bt9_text.as_bytes(), Codec::Mzst, 22)?.len(),
    );

    // ChampSim-like per-instruction records.
    let champ = translate::records_to_champsim(&records)?;
    row(
        "ChampSim (64 B/instr)",
        champ.len(),
        compress(&champ, Codec::Mgz, 9)?.len(),
        compress(&champ, Codec::Mzst, 22)?.len(),
    );

    // Translations roundtrip.
    let parsed = bt9::parse_text(&bt9_text)?;
    let back = translate::sbbt_to_records(translate::bt9_to_sbbt(&parsed)?)?;
    assert_eq!(back, records, "BT9 → SBBT must preserve the stream");
    println!(
        "\nBT9 → SBBT translation verified: {} records identical",
        back.len()
    );

    // Inspect the SBBT header (Fig. 1).
    let reader = SbbtReader::from_bytes(sbbt)?;
    let SbbtHeader {
        instruction_count,
        branch_count,
    } = *reader.header();
    println!("SBBT header: {instruction_count} instructions, {branch_count} branches");
    println!(
        "branch density: {:.1}%",
        100.0 * branch_count as f64 / instruction_count as f64
    );
    Ok(())
}
